"""Three-word (v1, v2, hazard-free) simulation of two-pattern tests.

For a pair of vectors applied in sequence, every net carries three packed
words over the pattern pairs in a batch:

* ``v1`` — the settled value under the first vector,
* ``v2`` — the settled value under the second vector,
* ``g``  — 1 when the net's waveform is *hazard-free* for arbitrary gate
  delays: it is either stable at ``v1 = v2`` with no possible glitch, or
  makes a single clean ``v1 -> v2`` transition.

The gate rules are the classical 6-valued algebra (stable 0/1, clean
rise/fall, hazardous 0/1) expressed word-parallel:

* AND/OR: the output is hazard-free when some hazard-free side input holds
  the controlling value through both vectors (it dominates), or when every
  input is hazard-free and no two inputs transition in opposite directions.
* XOR: hazard-free when at most one input transitions and all are
  hazard-free (two XOR transitions can always misalign into a glitch).
* NOT/BUF preserve hazard-freeness; constants are hazard-free.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..netlist import Circuit, GateType


class PairWords:
    """The (v1, v2, g) packed words of every net for a batch of test pairs."""

    __slots__ = ("v1", "v2", "g", "n_pairs", "mask")

    def __init__(
        self,
        v1: Dict[str, int],
        v2: Dict[str, int],
        g: Dict[str, int],
        n_pairs: int,
    ) -> None:
        self.v1 = v1
        self.v2 = v2
        self.g = g
        self.n_pairs = n_pairs
        self.mask = (1 << n_pairs) - 1

    def transition(self, net: str) -> int:
        """Mask of pairs where *net* has a (settled) transition."""
        return self.v1[net] ^ self.v2[net]

    def rising(self, net: str) -> int:
        """Mask of pairs where *net* rises (0 -> 1)."""
        return (self.v1[net] ^ self.mask) & self.v2[net]

    def stable_at(self, net: str, value: int) -> int:
        """Mask of pairs where *net* is hazard-free stable at *value*."""
        if value:
            both = self.v1[net] & self.v2[net]
        else:
            both = (self.v1[net] | self.v2[net]) ^ self.mask
        return both & self.g[net]


def _and_or_hazard(
    fanin_v1: Sequence[int],
    fanin_v2: Sequence[int],
    fanin_g: Sequence[int],
    controlling: int,
    mask: int,
) -> int:
    """Hazard-free word for an AND-like (controlling=0) or OR-like gate."""
    dominated = 0
    all_g = mask
    any_rise = 0
    any_fall = 0
    for a1, a2, ag in zip(fanin_v1, fanin_v2, fanin_g):
        if controlling == 0:
            stable_ctrl = ((a1 | a2) ^ mask) & ag  # hazard-free stable 0
        else:
            stable_ctrl = a1 & a2 & ag  # hazard-free stable 1
        dominated |= stable_ctrl
        all_g &= ag
        any_rise |= (a1 ^ mask) & a2
        any_fall |= a1 & (a2 ^ mask)
    no_opposition = (any_rise & any_fall) ^ mask
    return dominated | (all_g & no_opposition)


def _xor_hazard(
    fanin_v1: Sequence[int],
    fanin_v2: Sequence[int],
    fanin_g: Sequence[int],
    mask: int,
) -> int:
    all_g = mask
    seen_one = 0
    seen_two = 0
    for a1, a2, ag in zip(fanin_v1, fanin_v2, fanin_g):
        all_g &= ag
        t = a1 ^ a2
        seen_two |= seen_one & t
        seen_one |= t
    return all_g & (seen_two ^ mask)


def simulate_pairs(
    circuit: Circuit,
    v1_inputs: Mapping[str, int],
    v2_inputs: Mapping[str, int],
    n_pairs: int,
) -> PairWords:
    """Simulate a batch of two-pattern tests with hazard tracking.

    Primary inputs are assumed glitch-free (they change once between the
    two vectors), so their ``g`` word is all ones.
    """
    mask = (1 << n_pairs) - 1
    v1: Dict[str, int] = {}
    v2: Dict[str, int] = {}
    g: Dict[str, int] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gtype
        if gt is GateType.INPUT:
            v1[net] = v1_inputs.get(net, 0) & mask
            v2[net] = v2_inputs.get(net, 0) & mask
            g[net] = mask
            continue
        if gt is GateType.CONST0:
            v1[net] = v2[net] = 0
            g[net] = mask
            continue
        if gt is GateType.CONST1:
            v1[net] = v2[net] = mask
            g[net] = mask
            continue
        f1 = [v1[f] for f in gate.fanins]
        f2 = [v2[f] for f in gate.fanins]
        fg = [g[f] for f in gate.fanins]
        if gt is GateType.BUF:
            v1[net], v2[net], g[net] = f1[0], f2[0], fg[0]
            continue
        if gt is GateType.NOT:
            v1[net] = f1[0] ^ mask
            v2[net] = f2[0] ^ mask
            g[net] = fg[0]
            continue
        if gt in (GateType.AND, GateType.NAND):
            a1 = mask
            a2 = mask
            for w in f1:
                a1 &= w
            for w in f2:
                a2 &= w
            hz = _and_or_hazard(f1, f2, fg, 0, mask)
            if gt is GateType.NAND:
                a1 ^= mask
                a2 ^= mask
            v1[net], v2[net], g[net] = a1, a2, hz
            continue
        if gt in (GateType.OR, GateType.NOR):
            a1 = 0
            a2 = 0
            for w in f1:
                a1 |= w
            for w in f2:
                a2 |= w
            hz = _and_or_hazard(f1, f2, fg, 1, mask)
            if gt is GateType.NOR:
                a1 ^= mask
                a2 ^= mask
            v1[net], v2[net], g[net] = a1, a2, hz
            continue
        if gt in (GateType.XOR, GateType.XNOR):
            a1 = 0
            a2 = 0
            for w in f1:
                a1 ^= w
            for w in f2:
                a2 ^= w
            hz = _xor_hazard(f1, f2, fg, mask)
            if gt is GateType.XNOR:
                a1 ^= mask
                a2 ^= mask
            v1[net], v2[net], g[net] = a1, a2, hz
            continue
        raise ValueError(f"cannot simulate gate type {gt!r}")
    return PairWords(v1, v2, g, n_pairs)


def simulate_pair(
    circuit: Circuit,
    v1_assignment: Mapping[str, int],
    v2_assignment: Mapping[str, int],
) -> PairWords:
    """Single two-pattern test convenience wrapper (scalar assignments)."""
    v1 = {pi: v1_assignment.get(pi, 0) & 1 for pi in circuit.inputs}
    v2 = {pi: v2_assignment.get(pi, 0) & 1 for pi in circuit.inputs}
    return simulate_pairs(circuit, v1, v2, 1)
