"""Robust path-delay-fault sensitization (Lin-Reddy criteria).

A two-pattern test robustly detects a path delay fault when the fault is
caught independently of delays elsewhere in the circuit (under the standard
single-fault assumption that off-path signals settle by sample time).  The
per-gate side-input conditions implemented here are the classical ones:

* on-path transition ending at the gate's **non-controlling** value
  (e.g. a rising input of an AND): every off-path input must hold the
  non-controlling value *steadily and hazard-free* through both vectors;
* on-path transition ending at the **controlling** value: every off-path
  input must hold the non-controlling value in the second vector (its first
  value is free — the sampled-value argument tolerates early glitches);
* XOR/XNOR (no controlling value): every off-path input must be steady and
  hazard-free;
* NOT/BUF propagate unconditionally.

Every on-path net must carry a *settled* transition (``v1 != v2``); under
the standard criterion internal on-path nets may still be glitchy — side
inputs admitted by the ending-at-controlling rule can cause early glitches,
which settle before sampling.  ``RobustCriterion.STRICT`` tightens both
points: side inputs must be steady non-controlling in every case, and every
on-path net must be hazard-free — the fully conservative variant, matching
the all-steady side values of the paper's Table 1 tests.

Per pattern, at most one input pin of any gate can satisfy the conditions,
so robustly sensitized paths form a forward forest: their number per test is
bounded by the number of primary outputs.  The enumeration below exploits
that — it walks the sensitized subgraph with pattern masks, so a whole batch
of test pairs is processed in one traversal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from ..netlist import Circuit, GateType
from .hazard import PairWords

#: Path identity: the tuple of nets from primary input to primary output.
Path = Tuple[str, ...]

#: A path delay fault: the path plus the launch direction at the path input.
PathFault = Tuple[Path, bool]  # (path, rising)


class RobustCriterion(enum.Enum):
    """Which side-input rule set to apply."""

    STANDARD = "standard"
    STRICT = "strict"


def _side_masks(
    circuit: Circuit, pw: PairWords, criterion: RobustCriterion
) -> Dict[Tuple[str, int], Tuple[int, int]]:
    """Per gate input pin: (mask for ending-at-nc, mask for ending-at-c).

    Keyed by ``(gate_output_net, pin_index)``.  For gates without a
    controlling value (XOR/XNOR) both masks are the steady-sides mask; for
    NOT/BUF both are all-ones.
    """
    mask = pw.mask
    out: Dict[Tuple[str, int], Tuple[int, int]] = {}
    for gate in circuit.gates():
        gt = gate.gtype
        if gt in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        k = len(gate.fanins)
        if gt in (GateType.BUF, GateType.NOT):
            out[(gate.name, 0)] = (mask, mask)
            continue
        if gt in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            nc = 1 if gt in (GateType.AND, GateType.NAND) else 0
            steady = [pw.stable_at(f, nc) for f in gate.fanins]
            if nc:
                final_nc = [pw.v2[f] for f in gate.fanins]
            else:
                final_nc = [pw.v2[f] ^ mask for f in gate.fanins]
            for i in range(k):
                s = mask
                fnc = mask
                for j in range(k):
                    if j == i:
                        continue
                    s &= steady[j]
                    fnc &= final_nc[j]
                if criterion is RobustCriterion.STRICT:
                    out[(gate.name, i)] = (s, s)
                else:
                    out[(gate.name, i)] = (s, fnc)
            continue
        # XOR/XNOR: off-path inputs steady hazard-free (either value).
        steady_any = [
            ((pw.v1[f] ^ pw.v2[f]) ^ mask) & pw.g[f] for f in gate.fanins
        ]
        for i in range(k):
            s = mask
            for j in range(k):
                if j != i:
                    s &= steady_any[j]
            out[(gate.name, i)] = (s, s)
    return out


def _pin_propagation_mask(
    gate_type: GateType,
    pin_rising: int,
    pin_falling: int,
    side_nc: int,
    side_c: int,
) -> int:
    """Mask of pairs where the pin's transition robustly propagates."""
    if gate_type in (GateType.AND, GateType.NAND):
        # rising ends at non-controlling (1), falling at controlling (0)
        return (pin_rising & side_nc) | (pin_falling & side_c)
    if gate_type in (GateType.OR, GateType.NOR):
        return (pin_falling & side_nc) | (pin_rising & side_c)
    # XOR/XNOR/NOT/BUF: direction-independent
    return (pin_rising | pin_falling) & side_nc


@dataclass(frozen=True)
class SensitizedPath:
    """One robustly sensitized path with the pattern-pair masks detecting it."""

    path: Path
    rising_mask: int   # pairs detecting the rising-launch fault
    falling_mask: int  # pairs detecting the falling-launch fault


def robustly_sensitized_paths(
    circuit: Circuit,
    pw: PairWords,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
) -> List[SensitizedPath]:
    """Enumerate every robustly sensitized path for a batch of test pairs.

    Returns one record per path that is robustly sensitized by at least one
    pair in the batch, with masks telling which pairs detect the
    rising-launch and falling-launch faults of that path.
    """
    side = _side_masks(circuit, pw, criterion)
    fanout = circuit.fanout_map()
    output_set = circuit.output_set
    results: List[SensitizedPath] = []

    # Pin index lookup: reader gate -> list of (pin_index) per fanin name.
    def pins_of(reader: str, net: str) -> Iterator[int]:
        for i, f in enumerate(circuit.gate(reader).fanins):
            if f == net:
                yield i

    def walk(net: str, mask: int, path: List[str]) -> None:
        path.append(net)
        if net in output_set:
            launch = path[0]
            r = mask & pw.rising(launch)
            f = mask & ~r
            results.append(SensitizedPath(tuple(path), r, f & pw.mask))
        for reader in set(fanout.get(net, ())):
            rg = circuit.gate(reader)
            for pin in pins_of(reader, net):
                s_nc, s_c = side[(reader, pin)]
                prop = _pin_propagation_mask(
                    rg.gtype, pw.rising(net) & mask,
                    (pw.transition(net) & ~pw.rising(net)) & mask & pw.mask,
                    s_nc, s_c,
                )
                # The transition must reach the output as a settled
                # transition.  Hazard-freeness of internal on-path nets is
                # NOT required under the standard criterion (side glitches
                # settle before sampling); STRICT demands it.
                prop &= pw.transition(reader)
                if criterion is RobustCriterion.STRICT:
                    prop &= pw.g[reader]
                if prop:
                    walk(reader, prop, path)
        path.pop()

    for pi in circuit.inputs:
        launch_mask = pw.transition(pi) & pw.g[pi]
        if launch_mask:
            walk(pi, launch_mask, [])
    return results


def robust_faults_detected(
    circuit: Circuit,
    pw: PairWords,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
) -> Set[PathFault]:
    """The set of path delay faults robustly detected by the batch."""
    detected: Set[PathFault] = set()
    for rec in robustly_sensitized_paths(circuit, pw, criterion):
        if rec.rising_mask:
            detected.add((rec.path, True))
        if rec.falling_mask:
            detected.add((rec.path, False))
    return detected


def is_robust_test_for(
    circuit: Circuit,
    pw: PairWords,
    path: Path,
    rising: bool,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
) -> bool:
    """True when the (single) test pair in *pw* robustly detects the fault.

    Checks the one target path directly (launch direction, settled
    transitions along the path, per-gate side conditions) — O(path length
    × fanin) instead of enumerating every sensitized path.
    """
    if pw.n_pairs != 1:
        raise ValueError("is_robust_test_for expects a single test pair")
    path = tuple(path)
    launch = path[0]
    if circuit.gate(launch).gtype is not GateType.INPUT:
        return False
    if path[-1] not in circuit.output_set:
        return False
    if not (pw.transition(launch) & pw.g[launch]):
        return False
    if bool(pw.rising(launch)) != rising:
        return False
    strict = criterion is RobustCriterion.STRICT
    for prev, cur in zip(path, path[1:]):
        gate = circuit.gate(cur)
        gt = gate.gtype
        if prev not in gate.fanins:
            return False
        if not pw.transition(cur):
            return False
        if strict and not pw.g[cur]:
            return False
        if gt in (GateType.BUF, GateType.NOT):
            continue
        if gate.fanins.count(prev) > 1:
            return False
        if gt in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            nc = 1 if gt in (GateType.AND, GateType.NAND) else 0
            ends_nc = pw.v2[prev] == nc
            for f in gate.fanins:
                if f == prev:
                    continue
                if ends_nc or strict:
                    if not pw.stable_at(f, nc):
                        return False
                elif pw.v2[f] != nc:
                    return False
        elif gt in (GateType.XOR, GateType.XNOR):
            for f in gate.fanins:
                if f == prev:
                    continue
                if pw.transition(f) or not pw.g[f]:
                    return False
        else:  # pragma: no cover - sources cannot appear mid-path
            return False
    return True
