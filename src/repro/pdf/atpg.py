"""Deterministic robust test generation for path delay faults.

Given a path fault, the robust criteria fix a set of *line requirements*:

* every on-path net carries a settled transition (the launch direction at
  the primary input is the fault's direction);
* at each on-path gate the side inputs must be steady non-controlling
  (transition ending non-controlling; always, under STRICT) or
  non-controlling in the second vector (ending controlling, STANDARD);
* XOR side inputs must be steady.

The generator searches two-pattern assignments of the primary inputs in
the fault's support cone, with three-valued implication of both vectors
and requirement checking for pruning.  The search is complete over that
cone, so exhausting it (within the backtrack budget) proves the fault
robustly untestable — the quantity Table 7 shows the resynthesis removing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..atpg.podem import X, eval_gate3
from ..netlist import Circuit, GateType
from .hazard import simulate_pair
from .robust import Path, RobustCriterion, is_robust_test_for


class PdfAtpgStatus(enum.Enum):
    """Outcome of robust PDF test generation for one fault."""

    TESTABLE = "testable"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PdfAtpgResult:
    """Result record: status plus the two-pattern test when found."""

    status: PdfAtpgStatus
    v1: Optional[Dict[str, int]]
    v2: Optional[Dict[str, int]]
    backtracks: int

    @property
    def found(self) -> bool:
        """True when a robust test was generated."""
        return self.status is PdfAtpgStatus.TESTABLE


class _Abort(Exception):
    pass


def _path_requirements(
    circuit: Circuit, path: Path, criterion: RobustCriterion
) -> Optional[List[Tuple[str, str, str]]]:
    """Side-input requirements as (net, vector-scope, value) triples.

    vector-scope is ``"both"`` (steady at value, hazard-free handled by
    steadiness of the implied cone) or ``"v2"`` (second vector only).
    ``("net", "steady", "")`` marks an XOR side that must merely be steady.
    Returns None when the path is structurally unusable (an on-path gate
    has no controlling value and repeats the on-path net).
    """
    requirements: List[Tuple[str, str, str]] = []
    for prev, cur in zip(path, path[1:]):
        gate = circuit.gate(cur)
        gt = gate.gtype
        if gt in (GateType.BUF, GateType.NOT):
            continue
        if gate.fanins.count(prev) > 1:
            return None  # multi-pin connection cannot be robust
        if gt in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            nc = "1" if gt in (GateType.AND, GateType.NAND) else "0"
            for f in gate.fanins:
                if f == prev:
                    continue
                # the strict scope ("both") applies when the on-path
                # transition ends non-controlling; which case applies
                # depends on the assignment, so requirements are checked
                # dynamically during search — here we record the pair.
                requirements.append((f, f"side:{cur}:{nc}", prev))
        elif gt in (GateType.XOR, GateType.XNOR):
            for f in gate.fanins:
                if f != prev:
                    requirements.append((f, "steady", ""))
        else:  # pragma: no cover
            return None
    return requirements


def robust_pdf_test(
    circuit: Circuit,
    path: Sequence[str],
    rising: bool,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
    max_backtracks: int = 10_000,
    random_probes: int = 256,
) -> PdfAtpgResult:
    """Generate a robust two-pattern test for the fault, or prove none exists.

    Two phases, mirroring the standard ATPG flow:

    1. *random probing* — biased random pairs (the launch input flips,
       other inputs stay steady with high probability, matching the
       mostly-steady shape robust tests must have) checked with the fast
       single-path test; finds most testable faults immediately;
    2. *complete search* — ``(v1, v2)`` pairs over the primary inputs in
       the support of the path's gates (other inputs cannot influence the
       robust conditions), three-valued implication of both vectors,
       pruning on violated requirements.  Completeness over the support
       cone makes an exhausted search an untestability proof.
    """
    path = tuple(path)
    if path[0] not in circuit.inputs or path[-1] not in circuit.output_set:
        raise ValueError("path must run from a primary input to an output")
    reqs = _path_requirements(circuit, path, criterion)
    if reqs is None:
        return PdfAtpgResult(PdfAtpgStatus.UNTESTABLE, None, None, 0)

    on_path: Set[str] = set(path)
    support_nets = circuit.transitive_fanin(
        [cur for cur in path[1:]]
    ) | on_path
    support_pis = [pi for pi in circuit.inputs if pi in support_nets]
    # The launch input is assigned by the fault itself.
    launch = path[0]
    free_pis = [pi for pi in support_pis if pi != launch]
    # Assign inputs close to the path first: they constrain the side
    # requirements directly, so conflicts surface early in the search.
    side_nets = {f for f, _, _ in reqs}
    side_support = circuit.transitive_fanin(side_nets) if side_nets else set()
    free_pis.sort(key=lambda pi: (pi not in side_support, pi))

    # Implication only needs the support region (conditions and on-path
    # values live entirely inside it).  The region is transitive-fanin
    # closed, so it also materializes as a standalone circuit for the
    # final verification — keeping every step O(|region|).
    topo = [n for n in circuit.topological_order() if n in support_nets]
    path_set = set(path)

    region_circuit = Circuit(f"{circuit.name}.pdfregion")
    for net in topo:
        gate = circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            region_circuit.add_input(net)
        else:
            region_circuit.add_gate(net, gate.gtype, gate.fanins)
    region_circuit.set_outputs([path[-1]])

    assign1: Dict[str, int] = {launch: 0 if rising else 1}
    assign2: Dict[str, int] = {launch: 1 if rising else 0}

    backtracks = [0]

    def imply() -> Optional[Tuple[Dict[str, int], Dict[str, int]]]:
        """3-valued both-vector implication + requirement check.

        Returns the (good1, good2) maps, or None when some requirement is
        already violated.
        """
        g1: Dict[str, int] = {}
        g2: Dict[str, int] = {}
        for net in topo:
            gate = circuit.gate(net)
            if gate.gtype is GateType.INPUT:
                g1[net] = assign1.get(net, X)
                g2[net] = assign2.get(net, X)
            else:
                g1[net] = eval_gate3(
                    gate.gtype, [g1[f] for f in gate.fanins]
                )
                g2[net] = eval_gate3(
                    gate.gtype, [g2[f] for f in gate.fanins]
                )
            if net in path_set:
                # on-path nets must transition: v1 != v2 when determined
                if g1[net] != X and g2[net] != X and g1[net] == g2[net]:
                    return None
        # side requirements
        for f, scope, prev in reqs:
            if scope == "steady":
                if (g1[f] != X and g2[f] != X and g1[f] != g2[f]):
                    return None
                continue
            _, cur, nc_s = scope.split(":")
            nc = int(nc_s)
            ends_nc = g2[prev]
            # determine whether the on-path transition ends non-controlling
            if ends_nc == X:
                continue  # not yet determined; defer
            gate = circuit.gate(cur)
            and_like = gate.gtype in (GateType.AND, GateType.NAND)
            ctrl = 0 if and_like else 1
            arriving_nc = (ends_nc != ctrl)
            strict = (criterion is RobustCriterion.STRICT) or arriving_nc
            if strict:
                if g1[f] != X and g1[f] != nc:
                    return None
            if g2[f] != X and g2[f] != nc:
                return None
        return g1, g2

    def verify_full() -> bool:
        v1 = {pi: assign1.get(pi, 0) for pi in region_circuit.inputs}
        v2 = {pi: assign2.get(pi, 0) for pi in region_circuit.inputs}
        pw = simulate_pair(region_circuit, v1, v2)
        return is_robust_test_for(region_circuit, pw, path, rising, criterion)

    # Phase 1: biased random probing (launch flips; other inputs steady
    # with probability 0.8 — robust side conditions want steady values).
    if random_probes:
        import random as _random

        rng = _random.Random(hash((path, rising)) & 0xFFFFFFFF)
        for _ in range(random_probes):
            for pi in free_pis:
                v = rng.randint(0, 1)
                assign1[pi] = v
                assign2[pi] = v if rng.random() < 0.8 else 1 - v
            if verify_full():
                v1 = {pi: assign1.get(pi, 0) for pi in circuit.inputs}
                v2 = {pi: assign2.get(pi, 0) for pi in circuit.inputs}
                return PdfAtpgResult(PdfAtpgStatus.TESTABLE, v1, v2, 0)
        for pi in free_pis:
            assign1.pop(pi, None)
            assign2.pop(pi, None)

    def search(idx: int) -> bool:
        if imply() is None:
            return False
        if idx == len(free_pis):
            return verify_full()
        pi = free_pis[idx]
        for val1, val2 in ((0, 0), (1, 1), (0, 1), (1, 0)):
            assign1[pi] = val1
            assign2[pi] = val2
            if search(idx + 1):
                return True
            del assign1[pi]
            del assign2[pi]
            backtracks[0] += 1
            if backtracks[0] > max_backtracks:
                raise _Abort()
        return False

    try:
        if search(0):
            v1 = {pi: assign1.get(pi, 0) for pi in circuit.inputs}
            v2 = {pi: assign2.get(pi, 0) for pi in circuit.inputs}
            return PdfAtpgResult(
                PdfAtpgStatus.TESTABLE, v1, v2, backtracks[0]
            )
        return PdfAtpgResult(
            PdfAtpgStatus.UNTESTABLE, None, None, backtracks[0]
        )
    except _Abort:
        return PdfAtpgResult(PdfAtpgStatus.ABORTED, None, None, backtracks[0])


@dataclass
class PdfTestGenReport:
    """Summary of robust PDF test generation over a fault list."""

    testable: int
    untestable: int
    aborted: int
    tests: List[Tuple[Path, bool, Dict[str, int], Dict[str, int]]]

    @property
    def total(self) -> int:
        """Faults processed."""
        return self.testable + self.untestable + self.aborted


def generate_robust_tests(
    circuit: Circuit,
    faults: Sequence[Tuple[Path, bool]],
    criterion: RobustCriterion = RobustCriterion.STANDARD,
    max_backtracks: int = 10_000,
) -> PdfTestGenReport:
    """Run :func:`robust_pdf_test` over a fault list."""
    report = PdfTestGenReport(0, 0, 0, [])
    for path, rising in faults:
        res = robust_pdf_test(
            circuit, path, rising, criterion, max_backtracks
        )
        if res.status is PdfAtpgStatus.TESTABLE:
            report.testable += 1
            report.tests.append((tuple(path), rising, res.v1, res.v2))
        elif res.status is PdfAtpgStatus.UNTESTABLE:
            report.untestable += 1
        else:
            report.aborted += 1
    return report
