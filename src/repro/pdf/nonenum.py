"""Non-enumerative counting of robustly sensitized paths.

The paper's group pioneered non-enumerative path-delay-fault techniques
([8], [10]): instead of listing paths, label every line with the *number*
of sensitized partial paths reaching it (exactly like Procedure 1's
``N_p`` labels, restricted to robust propagation).  This module provides
those labels for a single two-pattern test; the test suite cross-checks
the total against the explicit enumerator of :mod:`repro.pdf.robust`, and
the labels scale to circuits whose sensitized path count is astronomically
large.
"""

from __future__ import annotations

from typing import Dict

from ..netlist import Circuit, GateType
from .hazard import PairWords
from .robust import RobustCriterion, _pin_propagation_mask, _side_masks


def robust_sensitization_labels(
    circuit: Circuit,
    pw: PairWords,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
) -> Dict[str, int]:
    """Per-net robustly-sensitized partial-path counts for one test pair.

    A net's label is the number of distinct PI-to-net subpaths along which
    the launched transition robustly propagates under this test — the
    Procedure 1 labeling confined to robust propagation.  Primary inputs
    carry 1 when they launch a clean transition; a gate output sums the
    labels of the input pins whose transitions satisfy the robust side
    conditions.
    """
    if pw.n_pairs != 1:
        raise ValueError("robust_sensitization_labels needs a single pair")
    side = _side_masks(circuit, pw, criterion)
    labels: Dict[str, int] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gtype
        if gt is GateType.INPUT:
            labels[net] = 1 if (pw.transition(net) & pw.g[net]) else 0
            continue
        if gt in (GateType.CONST0, GateType.CONST1):
            labels[net] = 0
            continue
        if not pw.transition(net) or (
            criterion is RobustCriterion.STRICT and not pw.g[net]
        ):
            labels[net] = 0
            continue
        total = 0
        for pin, f in enumerate(gate.fanins):
            if not labels.get(f):
                continue
            s_nc, s_c = side[(net, pin)]
            rising = pw.rising(f)
            falling = pw.transition(f) & ~rising & pw.mask
            prop = _pin_propagation_mask(gt, rising, falling, s_nc, s_c)
            if prop:
                total += labels[f]
        labels[net] = total
    return labels


def count_robust_sensitized(
    circuit: Circuit,
    pw: PairWords,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
) -> int:
    """Number of robustly sensitized paths under one two-pattern test.

    Each sensitized path is one detected path delay fault (the launch
    direction is fixed by the test), so this is also the per-test
    detected-fault count — obtained without enumerating a single path.
    """
    labels = robust_sensitization_labels(circuit, pw, criterion)
    return sum(labels[o] for o in circuit.outputs)
