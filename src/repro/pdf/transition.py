"""The transition (gate-delay) fault model — PDF's coarse counterpart.

A transition fault is a *gross* delay at one net: slow-to-rise or
slow-to-fall.  A two-pattern test ``(v1, v2)`` detects it when the net
carries the corresponding launch transition and the second vector detects
the matching stuck-at fault (slow-to-rise behaves as stuck-at-0 at sample
time).  The model has linearly many faults — which is exactly why the
paper targets the path model instead: distributed delays that leave every
single gate within spec escape transition tests but not path tests.
Having both lets the experiments contrast the models on the same circuits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..faults import FaultSimulator, StuckFault
from ..netlist import Circuit, GateType
from ..sim.logicsim import simulate
from ..sim.patterns import random_words

#: A transition fault: (net, rising) — rising=True is slow-to-rise.
TransitionFault = Tuple[str, bool]


def transition_fault_universe(circuit: Circuit) -> List[TransitionFault]:
    """Two transition faults per observable net."""
    observable = circuit.transitive_fanin(circuit.outputs)
    faults: List[TransitionFault] = []
    for net in circuit.nets():
        if net not in observable:
            continue
        if circuit.gate(net).gtype in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append((net, True))
        faults.append((net, False))
    return faults


@dataclass
class TransitionCoverageResult:
    """Outcome of a random two-pattern transition-fault campaign."""

    circuit_name: str
    total_faults: int
    detected: int
    patterns_applied: int
    last_effective_pattern: Optional[int]

    @property
    def remaining(self) -> int:
        """Faults still undetected."""
        return self.total_faults - self.detected

    @property
    def coverage(self) -> float:
        """Detected fraction."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults


def random_transition_campaign(
    circuit: Circuit,
    seed: int = 0,
    max_patterns: int = 1 << 14,
    batch_size: int = 128,
) -> TransitionCoverageResult:
    """Random two-pattern transition-fault simulation with dropping.

    Detection of ``(net, rising)`` by pair ``(v1, v2)``: the net rises
    from ``v1`` to ``v2`` *and* ``v2`` detects the net's stuck-at-0 fault
    (dually for falling / stuck-at-1).  Both checks run bit-parallel.
    """
    faults = transition_fault_universe(circuit)
    sim = FaultSimulator(circuit)
    rng = random.Random(seed)
    inputs = circuit.inputs
    active: Set[TransitionFault] = set(faults)
    applied = 0
    last_effective: Optional[int] = None

    while applied < max_patterns and active:
        width = min(batch_size, max_patterns - applied)
        w1 = random_words(inputs, width, rng)
        w2 = random_words(inputs, width, rng)
        val1 = simulate(circuit, w1, width)
        good2 = sim.good_values(w2, width)
        dropped: List[TransitionFault] = []
        for fault in active:
            net, rising = fault
            if rising:
                launch = (val1[net] ^ ((1 << width) - 1)) & good2[net]
                stuck = StuckFault(net, 0)
            else:
                launch = val1[net] & (good2[net] ^ ((1 << width) - 1))
                stuck = StuckFault(net, 1)
            if not launch:
                continue
            det = sim.detection_word(stuck, good2, width) & launch
            if det:
                first = (det & -det).bit_length() - 1
                index = applied + first + 1
                if last_effective is None or index > last_effective:
                    last_effective = index
                dropped.append(fault)
        active.difference_update(dropped)
        applied += width

    return TransitionCoverageResult(
        circuit_name=circuit.name,
        total_faults=len(faults),
        detected=len(faults) - len(active),
        patterns_applied=applied,
        last_effective_pattern=last_effective,
    )
