"""Path delay faults: hazard-aware two-pattern simulation, robust criteria,
random-pattern robust coverage campaigns (Table 7 substrate)."""

from .atpg import (
    PdfAtpgResult,
    PdfAtpgStatus,
    PdfTestGenReport,
    generate_robust_tests,
    robust_pdf_test,
)
from .hazard import PairWords, simulate_pair, simulate_pairs
from .nonenum import (
    count_robust_sensitized,
    robust_sensitization_labels,
)
from .robust import (
    Path,
    PathFault,
    RobustCriterion,
    SensitizedPath,
    is_robust_test_for,
    robust_faults_detected,
    robustly_sensitized_paths,
)
from .transition import (
    TransitionCoverageResult,
    TransitionFault,
    random_transition_campaign,
    transition_fault_universe,
)
from .sim import (
    PdfCoverageResult,
    random_pdf_campaign,
    total_path_faults,
)

__all__ = [
    "PairWords",
    "Path",
    "PathFault",
    "PdfAtpgResult",
    "PdfAtpgStatus",
    "PdfCoverageResult",
    "PdfTestGenReport",
    "count_robust_sensitized",
    "RobustCriterion",
    "SensitizedPath",
    "is_robust_test_for",
    "generate_robust_tests",
    "random_pdf_campaign",
    "robust_pdf_test",
    "robust_faults_detected",
    "robustly_sensitized_paths",
    "robust_sensitization_labels",
    "simulate_pair",
    "simulate_pairs",
    "total_path_faults",
    "TransitionCoverageResult",
    "TransitionFault",
    "random_transition_campaign",
    "transition_fault_universe",
]
