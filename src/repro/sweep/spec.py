"""The sweep model: a content-addressed grid of resynthesis cells.

A :class:`SweepSpec` names a *grid* — circuits x procedures x K values x
seeds, plus the shared procedure knobs — and expands it into **cells**,
each of which is exactly one :class:`~repro.service.jobspec.JobSpec`.
That identity is the whole design: a cell's id *is* its job spec's
content address, so a sweep cell dedupes against (and its report is
bit-identical to, on the deterministic fields) a standalone ``resynth``
run of the same (circuit, procedure, K, seed) — pinned by the ``sweep``
differential oracle and ``scripts/sweep_smoke.py``.

Like job specs, sweep specs are content-addressed: the sweep id is a
SHA-256 prefix of the canonical JSON encoding, so resubmitting an
identical grid lands on the same sweep (and its finished cells) instead
of redoing hours of work.  Validation here is shape validation only —
semantic failures surface in the cells, exactly as they do for jobs.

Grid documents (``repro sweep --grid grid.json``; also the body of
``POST /sweeps``) look like::

    {"format": "repro-sweepspec",
     "circuits": ["syn1423", "syn9234"],
     "procedures": ["procedure2", "procedure3"],
     "ks": [4, 5],
     "seeds": [1],
     "perm_budget": 200, "max_passes": 10}

Each ``circuits`` entry is a benchmark-suite name or an inline
``repro-netlist`` document (the generator-family circuits the fuzz
harness sweeps are fed inline).  See docs/SWEEP.md.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..service.jobspec import JobSpec, PROCEDURES

SWEEP_FORMAT = "repro-sweepspec"
SWEEP_VERSION = 1

#: One grid circuit: a suite name or an inline repro-netlist document.
CircuitRef = Union[str, Dict[str, object]]


class SweepSpecError(ValueError):
    """A submitted sweep grid failed shape validation (HTTP 400)."""


@dataclass(frozen=True)
class SweepCell:
    """One grid point, fully determined by its :class:`JobSpec`.

    ``circuit`` is the display label (the suite name, or the inline
    netlist's name); the spec carries the actual circuit source.
    """

    index: int
    circuit: str
    procedure: str
    k: int
    seed: int
    spec: JobSpec

    @property
    def cell_id(self) -> str:
        """The cell's content address — its job spec's job id."""
        return self.spec.job_id

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.cell_id}: {self.circuit} {self.procedure} "
                f"K={self.k} seed={self.seed}")


@dataclass(frozen=True)
class SweepSpec:
    """One sweep, fully determined by its grid and shared knobs.

    The grid axes are tuples so the spec is hashable; expansion order is
    the listed order, circuits outermost and seeds innermost, which is
    what makes cell indices (and therefore every report table) stable
    across runs and backends.
    """

    circuits: Tuple[CircuitRef, ...]
    procedures: Tuple[str, ...] = ("procedure2", "procedure3")
    ks: Tuple[int, ...] = (5,)
    seeds: Tuple[int, ...] = (0,)
    perm_budget: int = 200
    max_passes: int = 10
    verify_patterns: int = 0
    gate_weight: float = 10.0  # combined cells only

    def to_doc(self) -> Dict[str, object]:
        """JSON-compatible dict form (the canonical wire format)."""
        return {
            "format": SWEEP_FORMAT,
            "version": SWEEP_VERSION,
            "circuits": [c if isinstance(c, str) else dict(c)
                         for c in self.circuits],
            "procedures": list(self.procedures),
            "ks": list(self.ks),
            "seeds": list(self.seeds),
            "perm_budget": self.perm_budget,
            "max_passes": self.max_passes,
            "verify_patterns": self.verify_patterns,
            "gate_weight": self.gate_weight,
        }

    def to_json(self) -> str:
        """Pretty JSON form (what sweep stores persist as ``sweep.json``)."""
        return json.dumps(self.to_doc(), indent=1, sort_keys=True)

    @property
    def sweep_id(self) -> str:
        """Content address: stable across key order and whitespace."""
        canonical = json.dumps(
            self.to_doc(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return f"s{digest[:12]}"

    def describe(self) -> str:
        """One-line human-readable summary."""
        labels = [_circuit_label(c) for c in self.circuits]
        return (f"{self.sweep_id}: {len(self.cells())} cells — "
                f"{', '.join(labels)} x {', '.join(self.procedures)} x "
                f"K in {list(self.ks)} x seeds {list(self.seeds)}")

    def cells(self) -> List[SweepCell]:
        """The grid expanded in canonical order (one JobSpec per cell)."""
        out: List[SweepCell] = []
        for circuit in self.circuits:
            for procedure in self.procedures:
                for k in self.ks:
                    for seed in self.seeds:
                        source = ({"circuit": circuit}
                                  if isinstance(circuit, str)
                                  else {"netlist": dict(circuit)})
                        spec = JobSpec(
                            procedure=procedure,
                            k=k,
                            seed=seed,
                            perm_budget=self.perm_budget,
                            max_passes=self.max_passes,
                            verify_patterns=self.verify_patterns,
                            jobs=1,
                            gate_weight=self.gate_weight,
                            **source,
                        )
                        out.append(SweepCell(
                            index=len(out),
                            circuit=_circuit_label(circuit),
                            procedure=procedure,
                            k=k,
                            seed=seed,
                            spec=spec,
                        ))
        return out


def _circuit_label(circuit: CircuitRef) -> str:
    if isinstance(circuit, str):
        return circuit
    return str(circuit.get("name", "<inline>"))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SweepSpecError(message)


def _unique_axis(values: List[object], name: str) -> None:
    canon = [json.dumps(v, sort_keys=True) for v in values]
    _require(len(set(canon)) == len(canon),
             f"{name!r} must not contain duplicates")


def sweep_from_doc(doc: object) -> SweepSpec:
    """Validate a submitted grid document and build the :class:`SweepSpec`.

    Raises :class:`SweepSpecError` with a client-actionable message on
    any shape problem; the HTTP layer maps that to a 400.
    """
    _require(isinstance(doc, dict), "sweep grid must be a JSON object")
    _require(doc.get("format", SWEEP_FORMAT) == SWEEP_FORMAT,
             f"grid format must be {SWEEP_FORMAT!r}")
    _require(doc.get("version", SWEEP_VERSION) == SWEEP_VERSION,
             f"unsupported grid version {doc.get('version')!r}")

    known = {
        "format", "version", "circuits", "procedures", "ks", "seeds",
        "perm_budget", "max_passes", "verify_patterns", "gate_weight",
    }
    unknown = sorted(set(doc) - known)
    _require(not unknown, f"unknown grid field(s): {', '.join(unknown)}")

    circuits = doc.get("circuits")
    _require(isinstance(circuits, list) and circuits,
             "'circuits' must be a non-empty list of suite names or "
             "inline repro-netlist documents")
    from ..benchcircuits.suite import suite_names

    for i, circuit in enumerate(circuits):
        if isinstance(circuit, str):
            _require(circuit in suite_names(),
                     f"circuits[{i}]: unknown suite circuit {circuit!r}; "
                     f"choose from {', '.join(suite_names())}")
        elif isinstance(circuit, dict):
            _require(circuit.get("format") == "repro-netlist",
                     f"circuits[{i}]: inline circuit must be a "
                     f"repro-netlist document")
        else:
            raise SweepSpecError(
                f"circuits[{i}] must be a suite name or an inline "
                f"repro-netlist document")
    _unique_axis(circuits, "circuits")

    procedures = doc.get("procedures", list(SweepSpec.procedures))
    _require(isinstance(procedures, list) and procedures,
             "'procedures' must be a non-empty list")
    for procedure in procedures:
        _require(procedure in PROCEDURES,
                 f"unknown procedure {procedure!r}; choose from "
                 f"{', '.join(PROCEDURES)}")
    _unique_axis(procedures, "procedures")

    axes = {"ks": (2, 16), "seeds": (-(2 ** 62), 2 ** 62)}
    axis_values: Dict[str, List[int]] = {}
    for name, (lo, hi) in axes.items():
        values = doc.get(name, list(getattr(SweepSpec, name)))
        _require(isinstance(values, list) and values,
                 f"{name!r} must be a non-empty list of integers")
        for v in values:
            _require(isinstance(v, int) and not isinstance(v, bool),
                     f"{name!r} entries must be integers")
            _require(lo <= v <= hi,
                     f"{name!r} entries must be in [{lo}, {hi}]")
        _unique_axis(values, name)
        axis_values[name] = values

    ints = {
        "perm_budget": (1, 1_000_000), "max_passes": (1, 10_000),
        "verify_patterns": (0, 1_000_000),
    }
    knobs: Dict[str, int] = {}
    for name, (lo, hi) in ints.items():
        v = doc.get(name, getattr(SweepSpec, name))
        _require(isinstance(v, int) and not isinstance(v, bool),
                 f"{name!r} must be an integer")
        _require(lo <= v <= hi, f"{name!r} must be in [{lo}, {hi}]")
        knobs[name] = v
    gate_weight = doc.get("gate_weight", SweepSpec.gate_weight)
    _require(isinstance(gate_weight, (int, float))
             and not isinstance(gate_weight, bool),
             "'gate_weight' must be a number")
    _require(gate_weight >= 0, "'gate_weight' must be >= 0")

    return SweepSpec(
        circuits=tuple(c if isinstance(c, str) else dict(c)
                       for c in circuits),
        procedures=tuple(procedures),
        ks=tuple(axis_values["ks"]),
        seeds=tuple(axis_values["seeds"]),
        gate_weight=float(gate_weight),
        **knobs,
    )


def sweep_from_json(text: str) -> SweepSpec:
    """Parse and validate a grid from raw JSON text."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SweepSpecError(f"grid is not valid JSON: {exc}") from None
    return sweep_from_doc(doc)
