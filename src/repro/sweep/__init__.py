"""repro.sweep — fabric-distributed multi-objective parameter sweeps.

The paper's result is a trade-off surface, not a point: Procedure 2
minimizes gates, Procedure 3 minimizes paths, and K moves both.  This
package evaluates a whole grid — circuits x procedures x K values x
seeds — in one run and reduces it to the per-circuit **Pareto front**
over ``(gates, paths, depth)``:

* :class:`SweepSpec` (:mod:`spec`) — the content-addressed grid; each
  cell *is* a :class:`~repro.service.jobspec.JobSpec`, so cell reports
  are bit-identical to standalone runs and dedupe against them.
* :class:`SweepRunner` (:mod:`runner`) — dispatches cells as whole
  ``resynth_cell`` fabric tasks (serial / process pool / remote fleet),
  persisting every finished cell crash-safely so an interrupted sweep
  resumes bit-identically with only unfinished cells re-run.
* :class:`SweepReport` (:mod:`report`) — the per-cell table plus the
  non-dominated front, checked against a brute-force dominance scan by
  the ``sweep`` differential oracle.

Entry points: ``repro-resynth sweep --grid grid.json`` on the CLI,
``POST /sweeps`` on the service (docs/SWEEP.md has the full contract).
"""

from .report import (
    SWEEP_ROW_NUMBER_FIELDS,
    SweepReport,
    build_sweep_report,
    cell_row,
    dominates,
    netlist_fingerprint,
    pareto_front,
    sweep_report_from_doc,
)
from .runner import SweepError, SweepRunner
from .spec import (
    SweepCell,
    SweepSpec,
    SweepSpecError,
    sweep_from_doc,
    sweep_from_json,
)

__all__ = [
    "SWEEP_ROW_NUMBER_FIELDS",
    "SweepCell",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "SweepSpecError",
    "build_sweep_report",
    "cell_row",
    "dominates",
    "netlist_fingerprint",
    "pareto_front",
    "sweep_from_doc",
    "sweep_from_json",
    "sweep_report_from_doc",
]
