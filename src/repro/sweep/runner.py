"""Sweep execution: dispatch cells over a fabric, checkpoint each one.

:class:`SweepRunner` drives one :class:`~repro.sweep.spec.SweepSpec` to
a finished :class:`~repro.sweep.report.SweepReport` through any
:class:`~repro.fabric.Fabric` backend — each cell travels as one
``resynth_cell`` task (:mod:`repro.fabric.tasks`), so a sweep is the
first caller that hands the fleet *whole jobs* instead of candidate
shards.

Durability contract (the sweep analogue of the job store's):

* The sweep directory holds ``sweep.json`` (the grid, write-once;
  re-running against a directory created for a *different* grid is an
  error, not silent corruption), ``cells/<cell_id>.json`` (one finished
  report document per cell, written via :func:`repro.persist
  .atomic_write_text` the moment its wave completes) and
  ``report.json`` (the aggregate, written last).
* Cells are dispatched in **waves** sized to the backend's genuine
  parallelism, and every finished wave is persisted before the next is
  launched — so an interrupted sweep loses at most one wave of compute
  and ``resume=True`` re-runs only the cells without a stored report.
  Tasks are pure functions of their cell spec, so the resumed sweep's
  report is bit-identical to an uninterrupted run's (the ``sweep``
  oracle and ``scripts/sweep_smoke.py`` pin this).

Obs: a ``sweep.run`` span wraps the run; ``sweep_cells_total`` /
``sweep_cells_resumed_total`` count work done vs. skipped, and
``sweep_cell_seconds`` records each cell's own compute time.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional

from ..fabric import Fabric, FabricTask, SerialFabric
from ..obs import Registry, get_registry, maybe_tracer
from ..persist import atomic_write_text
from .report import SweepReport, build_sweep_report
from .spec import SweepCell, SweepSpec

__all__ = ["SweepError", "SweepRunner"]


class SweepError(RuntimeError):
    """A sweep directory disagrees with the grid being run."""


class SweepRunner:
    """Run one sweep grid to completion inside *root*.

    Parameters
    ----------
    spec:
        The grid to run.
    root:
        The sweep's directory (created if missing).  One directory per
        sweep: the runner refuses a directory whose ``sweep.json``
        belongs to a different grid.
    fabric:
        Execution backend for the cells; ``None`` runs them inline on a
        private :class:`~repro.fabric.SerialFabric`.  A caller-supplied
        fabric is *not* closed by the runner.
    memo:
        Optional persistent identification-cache directory handed to
        every cell (wall clock only — reports are unaffected).
    tracer / registry:
        Obs sinks (``sweep.run`` span; ``sweep_*`` metrics).
    """

    def __init__(
        self,
        spec: SweepSpec,
        root: str,
        fabric: Optional[Fabric] = None,
        memo: Optional[str] = None,
        tracer=None,
        registry: Optional[Registry] = None,
    ) -> None:
        self.spec = spec
        self.root = os.path.abspath(root)
        self.fabric = fabric
        self.memo = memo
        self.tracer = maybe_tracer(tracer)
        self.registry = registry if registry is not None else get_registry()

    # -- paths ----------------------------------------------------------- #

    @property
    def cells_dir(self) -> str:
        return os.path.join(self.root, "cells")

    def cell_path(self, cell_id: str) -> str:
        return os.path.join(self.cells_dir, f"{cell_id}.json")

    @property
    def report_path(self) -> str:
        return os.path.join(self.root, "report.json")

    # -- persistence ----------------------------------------------------- #

    def _prepare_root(self) -> None:
        os.makedirs(self.cells_dir, exist_ok=True)
        spec_path = os.path.join(self.root, "sweep.json")
        if os.path.exists(spec_path):
            with open(spec_path, "r", encoding="utf-8") as fh:
                try:
                    existing = json.load(fh)
                except ValueError:
                    existing = None
            if existing != self.spec.to_doc():
                raise SweepError(
                    f"{self.root} holds a different sweep "
                    f"(expected grid {self.spec.sweep_id})")
        else:
            atomic_write_text(spec_path, self.spec.to_json())

    def _load_finished(self, cells: List[SweepCell],
                       ) -> Dict[str, Dict[str, object]]:
        """Stored cell reports that are present and intact."""
        from ..resynth.serialize import report_from_doc

        done: Dict[str, Dict[str, object]] = {}
        for cell in cells:
            path = self.cell_path(cell.cell_id)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
                report_from_doc(doc)  # shape check; torn files re-run
            except (OSError, KeyError, TypeError, ValueError):
                continue
            done[cell.cell_id] = doc
        return done

    # -- execution ------------------------------------------------------- #

    def run(self, resume: bool = False,
            on_cell: Optional[Callable[[SweepCell, Dict[str, object]],
                                       None]] = None) -> SweepReport:
        """Run every unfinished cell and return the aggregate report.

        ``resume=False`` re-runs every cell regardless of what the
        directory holds; ``resume=True`` keeps intact stored cell
        reports and runs only the rest.  ``on_cell`` fires once per
        *executed* cell, after its report document is durably on disk.
        """
        self._prepare_root()
        cells = self.spec.cells()
        done = self._load_finished(cells) if resume else {}
        pending = [cell for cell in cells if cell.cell_id not in done]
        fabric = self.fabric
        own_fabric = fabric is None
        if own_fabric:
            fabric = SerialFabric(tracer=self.tracer,
                                  registry=self.registry)
        self.registry.inc("sweep_runs_total")
        if done:
            self.registry.inc("sweep_cells_resumed_total", len(done))
        try:
            with self.tracer.span(
                    "sweep.run", sweep=self.spec.sweep_id,
                    backend=fabric.name, cells=len(cells),
                    resumed=len(done)) as span:
                waves = 0
                # Wave size: the backend's honest parallelism (a fixed
                # shards hint wins) — big enough to keep every worker
                # busy, small enough that a crash forfeits one wave.
                wave = max(1, fabric.shard_count(len(pending) or 1,
                                                 chunk_factor=1))
                for start in range(0, len(pending), wave):
                    batch = pending[start:start + wave]
                    tasks = []
                    for cell in batch:
                        payload: Dict[str, object] = {
                            "spec": cell.spec.to_doc()}
                        if self.memo is not None:
                            payload["memo"] = self.memo
                        tasks.append(FabricTask(kind="resynth_cell",
                                                payload=payload))
                    docs = fabric.map(tasks)
                    waves += 1
                    for cell, doc in zip(batch, docs):
                        atomic_write_text(
                            self.cell_path(cell.cell_id),
                            json.dumps(doc, indent=1, sort_keys=True))
                        done[cell.cell_id] = doc
                        self.registry.inc("sweep_cells_total")
                        self.registry.observe(
                            "sweep_cell_seconds",
                            float(doc.get("total_seconds", 0.0)))
                        if on_cell is not None:
                            on_cell(cell, doc)
                span.annotate(waves=waves, executed=len(pending))
        finally:
            if own_fabric:
                fabric.close()
        report = build_sweep_report(self.spec, done)
        atomic_write_text(self.report_path, report.to_json())
        return report
