"""Sweep aggregation: per-cell tables and the (gates, paths, depth) front.

A finished sweep is a set of per-cell resynthesis reports; this module
reduces them to the document ``repro sweep`` prints and
``GET /sweeps/<id>/report`` serves: one summary **row** per cell (the
deterministic report numbers, the result netlist's depth and content
hash, and the wall clock as information only) plus the per-circuit
**Pareto front** over the minimized objective triple
``(gates_after, paths_after, depth)``.

Dominance is the standard multi-objective definition: cell *a* dominates
cell *b* when it is no worse on every objective and strictly better on
at least one.  The front is the set of non-dominated cells, listed in
cell order; cells with *equal* objective triples are all kept (they are
interchangeable trade-off points, and dropping one would make the front
depend on expansion order in a way nothing else does).  Fronts are
per-circuit — comparing gate counts across different circuits is
meaningless — and the ``sweep`` differential oracle checks every front
against an independent brute-force dominance scan.

Determinism: everything in a row except ``wall_s`` (and the timings a
cell report itself carries) is a pure function of the cell's spec —
:data:`SWEEP_ROW_NUMBER_FIELDS` names the comparable columns, the same
way ``REPORT_NUMBER_FIELDS`` does for single reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .spec import SweepSpec, SweepCell

SWEEP_REPORT_FORMAT = "repro-sweep-report"
SWEEP_REPORT_VERSION = 1

#: Row fields that must be bit-identical across backends, resumes and
#: front ends (everything except the wall clock).
SWEEP_ROW_NUMBER_FIELDS = (
    "gates_before", "gates_after", "paths_before", "paths_after",
    "depth", "replacements", "passes", "mutations", "netlist_sha256",
)


def netlist_fingerprint(circuit_doc: Dict[str, object]) -> str:
    """SHA-256 of a netlist document's canonical JSON encoding."""
    canonical = json.dumps(circuit_doc, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when objective vector *a* dominates *b* (minimization)."""
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def pareto_front(points: Sequence[Sequence[int]]) -> List[int]:
    """Indices of the non-dominated *points*, in input order.

    O(n^2) pairwise scan — sweeps have tens to hundreds of cells, and
    the obviousness is the point: the ``sweep`` oracle uses this same
    definition, implemented independently, as its referee.
    """
    out = []
    for i, p in enumerate(points):
        if not any(dominates(q, p) for j, q in enumerate(points) if j != i):
            out.append(i)
    return out


def cell_row(cell: SweepCell,
             report_doc: Dict[str, object]) -> Dict[str, object]:
    """One summary row from a cell's resynthesis report document."""
    from ..io.json_io import circuit_from_json

    circuit_doc = report_doc["circuit"]
    depth = circuit_from_json(json.dumps(circuit_doc)).depth()
    return {
        "cell": cell.index,
        "cell_id": cell.cell_id,
        "circuit": cell.circuit,
        "procedure": cell.procedure,
        "k": cell.k,
        "seed": cell.seed,
        "objective": report_doc["objective"],
        "gates_before": report_doc["gates_before"],
        "gates_after": report_doc["gates_after"],
        "paths_before": report_doc["paths_before"],
        "paths_after": report_doc["paths_after"],
        "depth": depth,
        "replacements": report_doc["replacements"],
        "passes": report_doc["passes"],
        "mutations": report_doc["mutations"],
        "netlist_sha256": netlist_fingerprint(circuit_doc),
        "wall_s": round(float(report_doc.get("total_seconds", 0.0)), 3),
    }


@dataclass(frozen=True)
class SweepReport:
    """The aggregate over one sweep's finished cells."""

    sweep_id: str
    spec_doc: Dict[str, object]
    rows: Tuple[Dict[str, object], ...]
    #: circuit label -> cell ids of its non-dominated cells, cell order.
    front: Dict[str, List[str]]

    def to_doc(self) -> Dict[str, object]:
        """JSON-compatible dict form (what the store and API serve)."""
        return {
            "format": SWEEP_REPORT_FORMAT,
            "version": SWEEP_REPORT_VERSION,
            "sweep_id": self.sweep_id,
            "spec": dict(self.spec_doc),
            "cells": len(self.rows),
            "rows": [dict(row) for row in self.rows],
            "front": {name: list(ids)
                      for name, ids in sorted(self.front.items())},
        }

    def to_json(self) -> str:
        """Pretty JSON form (what sweep stores persist)."""
        return json.dumps(self.to_doc(), indent=1, sort_keys=True)

    def front_rows(self) -> List[Dict[str, object]]:
        """The rows on their circuit's front, in cell order."""
        on_front = {cell_id for ids in self.front.values()
                    for cell_id in ids}
        return [row for row in self.rows if row["cell_id"] in on_front]

    def render(self) -> str:
        """A human-readable table with front members starred."""
        header = (f"{'':2}{'circuit':<12} {'proc':<11} {'K':>2} {'seed':>5} "
                  f"{'gates':>11} {'paths':>13} {'depth':>5} "
                  f"{'repl':>4} {'wall_s':>7}")
        on_front = {cell_id for ids in self.front.values()
                    for cell_id in ids}
        lines = [header]
        for row in self.rows:
            star = "*" if row["cell_id"] in on_front else " "
            gates = f"{row['gates_before']}->{row['gates_after']}"
            paths = f"{row['paths_before']}->{row['paths_after']}"
            lines.append(
                f"{star:2}{row['circuit']:<12} {row['procedure']:<11} "
                f"{row['k']:>2} {row['seed']:>5} {gates:>11} {paths:>13} "
                f"{row['depth']:>5} {row['replacements']:>4} "
                f"{row['wall_s']:>7.2f}")
        n_front = sum(len(ids) for ids in self.front.values())
        lines.append(f"(* = on its circuit's (gates, paths, depth) "
                     f"Pareto front; {n_front} of {len(self.rows)} cells)")
        return "\n".join(lines)


def build_sweep_report(spec: SweepSpec,
                       report_docs: Dict[str, Dict[str, object]],
                       ) -> SweepReport:
    """Aggregate *report_docs* (cell id -> report document) for *spec*.

    Raises :class:`KeyError` when a cell's report is missing — callers
    (runner, service) only aggregate once every cell is finished.
    """
    cells = spec.cells()
    rows = [cell_row(cell, report_docs[cell.cell_id]) for cell in cells]
    by_circuit: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        by_circuit.setdefault(row["circuit"], []).append(row)
    front: Dict[str, List[str]] = {}
    for name, group in by_circuit.items():
        points = [(row["gates_after"], row["paths_after"], row["depth"])
                  for row in group]
        front[name] = [group[i]["cell_id"] for i in pareto_front(points)]
    return SweepReport(
        sweep_id=spec.sweep_id,
        spec_doc=spec.to_doc(),
        rows=tuple(rows),
        front=front,
    )


def sweep_report_from_doc(doc: object) -> SweepReport:
    """Rebuild a sweep report from :meth:`SweepReport.to_doc` output."""
    if not isinstance(doc, dict):
        raise ValueError("sweep report document is not an object")
    if doc.get("format") != SWEEP_REPORT_FORMAT:
        raise ValueError(f"not a {SWEEP_REPORT_FORMAT} document")
    if doc.get("version") != SWEEP_REPORT_VERSION:
        raise ValueError(
            f"unsupported sweep report version {doc.get('version')!r}")
    return SweepReport(
        sweep_id=doc["sweep_id"],
        spec_doc=dict(doc["spec"]),
        rows=tuple(dict(row) for row in doc["rows"]),
        front={name: list(ids) for name, ids in doc["front"].items()},
    )
