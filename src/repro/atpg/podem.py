"""PODEM test generation for single stuck-at faults.

A classical complete PODEM: decisions are made only on primary inputs,
guided by backtrace from objectives (fault activation first, then D-drive
through the D-frontier), with three-valued implication of both the good and
the faulty machine and an X-path check for early pruning.  Because the
search branches only on PI values and explores both, exhausting it proves
untestability — which is exactly what redundancy identification and removal
(:mod:`repro.atpg.redundancy`) need.

Composite values follow the 5-valued D-calculus: a net is *determined* only
when both machines are determined; it carries a D when both are determined
and differ.  Search-space pruning (returning "no test under this partial
assignment") happens only on sound conditions — activation impossible,
D-frontier empty after activation, no X-path — so exhausting the search
soundly proves untestability.

For speed the engine works on integer-indexed arrays and restricts
implication to the fault's *region*: the transitive fanin of the primary
outputs reachable from the fault site (values elsewhere cannot influence
detection of this fault).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist import Circuit, GateType
from ..faults import StuckFault

#: Three-valued logic: 0, 1, X.
X = 2

_AND_LIKE = (GateType.AND, GateType.NAND)
_OR_LIKE = (GateType.OR, GateType.NOR)
_XOR_LIKE = (GateType.XOR, GateType.XNOR)
_INVERTING = (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT)


def eval_gate3(gtype: GateType, values: Sequence[int]) -> int:
    """Three-valued gate evaluation (public reference semantics)."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype is GateType.BUF:
        return values[0]
    if gtype is GateType.NOT:
        v = values[0]
        return X if v == X else 1 - v
    if gtype in _AND_LIKE:
        out = 1
        for v in values:
            if v == 0:
                out = 0
                break
            if v == X:
                out = X
        if gtype is GateType.NAND and out != X:
            out = 1 - out
        return out
    if gtype in _OR_LIKE:
        out = 0
        for v in values:
            if v == 1:
                out = 1
                break
            if v == X:
                out = X
        if gtype is GateType.NOR and out != X:
            out = 1 - out
        return out
    if gtype in _XOR_LIKE:
        out = 0
        for v in values:
            if v == X:
                return X
            out ^= v
        if gtype is GateType.XNOR:
            out = 1 - out
        return out
    raise ValueError(f"cannot evaluate {gtype!r}")


class PodemStatus(enum.Enum):
    """Outcome of a PODEM run."""

    TESTABLE = "testable"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    """PODEM outcome: status, the test (if any), and search effort."""

    status: PodemStatus
    test: Optional[Dict[str, int]]
    backtracks: int

    @property
    def found(self) -> bool:
        """True when a test was generated."""
        return self.status is PodemStatus.TESTABLE


class _Abort(Exception):
    pass


class PodemEngine:
    """PODEM search engine for one circuit (reusable across faults)."""

    def __init__(self, circuit: Circuit, max_backtracks: int = 20_000) -> None:
        self.circuit = circuit
        self.max_backtracks = max_backtracks
        topo = circuit.topological_order()
        self._names = topo
        self._id = {n: i for i, n in enumerate(topo)}
        n = len(topo)
        self._gtype: List[GateType] = [circuit.gate(nm).gtype for nm in topo]
        self._fanins: List[Tuple[int, ...]] = [
            tuple(self._id[f] for f in circuit.gate(nm).fanins) for nm in topo
        ]
        fan: List[List[int]] = [[] for _ in range(n)]
        for i, fi in enumerate(self._fanins):
            for f in fi:
                fan[f].append(i)
        self._readers = [tuple(r) for r in fan]
        self._levels_by_id = [0] * n
        lv = circuit.levels()
        for nm, i in self._id.items():
            self._levels_by_id[i] = lv[nm]
        self._is_output = [False] * n
        for o in circuit.output_set:
            self._is_output[self._id[o]] = True
        self._pi_ids = [self._id[p] for p in circuit.inputs]

    # -- per-fault region ----------------------------------------------------

    def _region(self, site: int) -> Tuple[List[int], List[int]]:
        """(region topo order, reachable POs) for a fault at net id *site*."""
        cone: Set[int] = set()
        stack = [site]
        while stack:
            i = stack.pop()
            if i in cone:
                continue
            cone.add(i)
            stack.extend(self._readers[i])
        pos = [i for i in cone if self._is_output[i]]
        region: Set[int] = set()
        stack = list(pos)
        while stack:
            i = stack.pop()
            if i in region:
                continue
            region.add(i)
            stack.extend(self._fanins[i])
        region.add(site)
        # ids were assigned in topological order, so sorting is topo order
        return sorted(region), pos

    # -- search ----------------------------------------------------------------

    def run(self, fault: StuckFault) -> PodemResult:
        """Generate a test for *fault* or prove it untestable."""
        if fault.net not in self.circuit:
            raise ValueError(f"fault net {fault.net!r} not in circuit")
        site = self._id[fault.net]
        reader_id = self._id[fault.reader] if fault.is_branch else -1
        fault_pin = fault.pin if fault.is_branch else -1
        fault_value = fault.value
        region, pos = self._region(
            reader_id if fault.is_branch else site
        )
        if not pos:
            return PodemResult(PodemStatus.UNTESTABLE, None, 0)
        region_set = set(region)

        n = len(self._names)
        good = [X] * n
        bad = [X] * n
        assignment: Dict[int, int] = {}
        gtypes = self._gtype
        fanins = self._fanins
        levels = self._levels_by_id

        # Opcodes for the imply hot loop: 0 INPUT, 1 CONST0, 2 CONST1,
        # 3 BUF, 4 NOT, 5 AND, 6 NAND, 7 OR, 8 NOR, 9 XOR, 10 XNOR.
        _OPS = {
            GateType.INPUT: 0, GateType.CONST0: 1, GateType.CONST1: 2,
            GateType.BUF: 3, GateType.NOT: 4, GateType.AND: 5,
            GateType.NAND: 6, GateType.OR: 7, GateType.NOR: 8,
            GateType.XOR: 9, GateType.XNOR: 10,
        }
        ops = [_OPS[gtypes[i]] for i in range(n)]

        def _eval3(op: int, fi, values) -> int:
            if op == 5 or op == 6:
                v = 1
                for f in fi:
                    a = values[f]
                    if a == 0:
                        v = 0
                        break
                    if a == 2:
                        v = 2
                if op == 6 and v != 2:
                    v = 1 - v
                return v
            if op == 7 or op == 8:
                v = 0
                for f in fi:
                    a = values[f]
                    if a == 1:
                        v = 1
                        break
                    if a == 2:
                        v = 2
                if op == 8 and v != 2:
                    v = 1 - v
                return v
            if op == 3:
                return values[fi[0]]
            if op == 4:
                a = values[fi[0]]
                return a if a == 2 else 1 - a
            if op == 9 or op == 10:
                v = 0
                for f in fi:
                    a = values[f]
                    if a == 2:
                        return 2
                    v ^= a
                if op == 10:
                    v = 1 - v
                return v
            return 0 if op == 1 else 1  # constants

        def imply() -> None:
            for i in region:
                op = ops[i]
                if op == 0:
                    v = assignment.get(i, X)
                    good[i] = v
                    bad[i] = v
                    if i == site and not fault.is_branch:
                        bad[i] = fault_value
                    continue
                fi = fanins[i]
                good[i] = _eval3(op, fi, good)
                if i == reader_id:
                    bvals = [
                        fault_value if k == fault_pin else bad[f]
                        for k, f in enumerate(fi)
                    ]
                    bad[i] = eval_gate3(gtypes[i], bvals)
                else:
                    bad[i] = _eval3(op, fi, bad)
                if i == site and not fault.is_branch:
                    bad[i] = fault_value

        def detected() -> bool:
            for o in pos:
                g, b = good[o], bad[o]
                if g != X and b != X and g != b:
                    return True
            return False

        def d_frontier(activated: bool) -> List[int]:
            frontier = []
            for i in region:
                if good[i] != X and bad[i] != X:
                    continue
                gt = gtypes[i]
                if gt is GateType.INPUT:
                    continue
                has_d = False
                for f in fanins[i]:
                    if good[f] != X and bad[f] != X and good[f] != bad[f]:
                        has_d = True
                        break
                if has_d or (activated and i == reader_id):
                    frontier.append(i)
            return frontier

        def x_path_exists(frontier: List[int]) -> bool:
            seen: Set[int] = set()
            stack = list(frontier)
            while stack:
                i = stack.pop()
                if i in seen:
                    continue
                seen.add(i)
                if self._is_output[i]:
                    return True
                for r in self._readers[i]:
                    if r not in seen and r in region_set and (
                        good[r] == X or bad[r] == X
                    ):
                        stack.append(r)
            return False

        def objective(frontier: List[int]) -> Optional[Tuple[int, int]]:
            gate_i = max(frontier, key=levels.__getitem__)
            gt = gtypes[gate_i]
            for f in fanins[gate_i]:
                if good[f] == X or bad[f] == X:
                    if gt in _AND_LIKE:
                        return (f, 1)
                    return (f, 0)
            return None

        def backtrace(i: int, value: int) -> Optional[Tuple[int, int]]:
            v = value
            while True:
                gt = gtypes[i]
                if gt is GateType.INPUT:
                    return (i, v)
                if gt in (GateType.CONST0, GateType.CONST1):
                    return None
                if gt is GateType.BUF:
                    i = fanins[i][0]
                    continue
                if gt is GateType.NOT:
                    i = fanins[i][0]
                    v = 1 - v
                    continue
                core = (1 - v) if gt in _INVERTING else v
                x_fanins = [
                    f for f in fanins[i] if good[f] == X or bad[f] == X
                ]
                if not x_fanins:
                    return None
                if gt in _AND_LIKE:
                    if core == 1:
                        i = max(x_fanins, key=levels.__getitem__)
                        v = 1
                    else:
                        i = min(x_fanins, key=levels.__getitem__)
                        v = 0
                elif gt in _OR_LIKE:
                    if core == 0:
                        i = max(x_fanins, key=levels.__getitem__)
                        v = 0
                    else:
                        i = min(x_fanins, key=levels.__getitem__)
                        v = 1
                else:  # XOR family
                    known = sum(
                        good[f] for f in fanins[i] if good[f] != X
                    )
                    nxt = x_fanins[0]
                    v = (core ^ (known & 1)) & 1 if len(x_fanins) == 1 else 0
                    i = nxt

        self._backtracks = 0

        def search() -> bool:
            imply()
            if detected():
                return True
            site_good = good[site]
            if site_good == fault_value:
                return False  # activation impossible under this assignment
            if site_good == X:
                obj = (site, 1 - fault_value)
            else:
                frontier = d_frontier(activated=True)
                if not frontier:
                    return False
                if not x_path_exists(frontier):
                    return False
                obj = objective(frontier)
                if obj is None:
                    return False
            decision = backtrace(obj[0], obj[1])
            if decision is None:
                return False
            pi, v = decision
            for candidate in (v, 1 - v):
                assignment[pi] = candidate
                if search():
                    return True
                del assignment[pi]
                self._backtracks += 1
                if self._backtracks > self.max_backtracks:
                    raise _Abort()
            return False

        try:
            if search():
                test = {
                    self._names[i]: assignment.get(i, 0)
                    for i in self._pi_ids
                }
                return PodemResult(
                    PodemStatus.TESTABLE, test, self._backtracks
                )
            return PodemResult(PodemStatus.UNTESTABLE, None, self._backtracks)
        except _Abort:
            return PodemResult(PodemStatus.ABORTED, None, self._backtracks)


def podem(
    circuit: Circuit, fault: StuckFault, max_backtracks: int = 20_000
) -> PodemResult:
    """One-shot PODEM run (see :class:`PodemEngine`)."""
    return PodemEngine(circuit, max_backtracks).run(fault)
