"""Complete stuck-at test set generation with compaction.

The classical three-phase flow:

1. **random phase** — seeded random patterns with fault dropping keep only
   the random-pattern-resistant faults;
2. **deterministic phase** — PODEM targets each survivor; every generated
   test is fault-simulated against the remaining faults (incidental
   detection drops them too);
3. **compaction** — reverse-order fault simulation discards tests made
   redundant by later ones.

The result is a compact test set with provably complete coverage of the
testable faults (untestable and aborted faults are reported separately).
Comparison units being fully testable (Section 3), resynthesized circuits
keep complete coverage — which the integration tests assert.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..faults import FaultSimulator, StuckFault, fault_universe
from ..netlist import Circuit
from ..sim.patterns import random_words
from .podem import PodemEngine, PodemStatus

Pattern = Tuple[int, ...]  # input values in circuit.inputs order


@dataclass
class TestSet:
    """A generated stuck-at test set plus coverage bookkeeping."""

    circuit_name: str
    inputs: List[str]
    patterns: List[Pattern]
    detected: int
    untestable: int
    aborted: int
    total_faults: int

    @property
    def complete(self) -> bool:
        """True when every non-untestable, non-aborted fault is covered."""
        return self.detected + self.untestable + self.aborted == \
            self.total_faults

    @property
    def fault_coverage(self) -> float:
        """Detected / total."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    def as_assignments(self) -> List[Dict[str, int]]:
        """Patterns as input-name dictionaries."""
        return [dict(zip(self.inputs, p)) for p in self.patterns]


def _pattern_word(patterns: Sequence[Pattern], inputs: Sequence[str]):
    words = {pi: 0 for pi in inputs}
    for p_idx, pattern in enumerate(patterns):
        for i, pi in enumerate(inputs):
            if pattern[i]:
                words[pi] |= 1 << p_idx
    return words


def generate_test_set(
    circuit: Circuit,
    faults: Optional[Sequence[StuckFault]] = None,
    random_patterns: int = 1024,
    seed: int = 0,
    max_backtracks: int = 5_000,
    compact: bool = True,
) -> TestSet:
    """Generate a (compacted) complete stuck-at test set."""
    if faults is None:
        faults = fault_universe(circuit)
    inputs = circuit.inputs
    sim = FaultSimulator(circuit)
    rng = random.Random(seed)

    tests: List[Pattern] = []
    remaining: List[StuckFault] = list(faults)

    # Phase 1: random patterns, keeping only the effective ones.
    applied = 0
    batch = 64
    while applied < random_patterns and remaining:
        width = min(batch, random_patterns - applied)
        words = random_words(inputs, width, rng)
        good = sim.good_values(words, width)
        detected_here: Dict[int, List[StuckFault]] = {}
        survivors = []
        for fault in remaining:
            det = sim.detection_word(fault, good, width)
            if det:
                first = (det & -det).bit_length() - 1
                detected_here.setdefault(first, []).append(fault)
            else:
                survivors.append(fault)
        for p_idx in sorted(detected_here):
            tests.append(tuple(
                (words[pi] >> p_idx) & 1 for pi in inputs
            ))
        remaining = survivors
        applied += width

    # Phase 2: PODEM for the survivors, with incidental-detection dropping.
    from collections import deque

    engine = PodemEngine(circuit, max_backtracks)
    untestable = 0
    aborted = 0
    queue = deque(remaining)
    while queue:
        fault = queue.popleft()
        verdict = engine.run(fault)
        if verdict.status is PodemStatus.UNTESTABLE:
            untestable += 1
            continue
        if verdict.status is PodemStatus.ABORTED:
            aborted += 1
            continue
        pattern = tuple(verdict.test[pi] for pi in inputs)
        tests.append(pattern)
        # drop everything else this test incidentally detects
        words = _pattern_word([pattern], inputs)
        good = sim.good_values(words, 1)
        queue = deque(
            f for f in queue if not sim.detection_word(f, good, 1)
        )

    detected = len(faults) - untestable - aborted

    # Phase 3: reverse-order compaction.  The coverage obligation is the
    # set of faults the full test set detects (everything else was
    # untestable or aborted).
    if compact and tests:
        kept: List[Pattern] = []
        words = _pattern_word(tests, inputs)
        good = sim.good_values(words, len(tests))
        todo: Set[StuckFault] = {
            f for f in faults
            if sim.detection_word(f, good, len(tests))
        }
        for pattern in reversed(tests):
            if not todo:
                break
            words = _pattern_word([pattern], inputs)
            good = sim.good_values(words, 1)
            hits = [f for f in todo if sim.detection_word(f, good, 1)]
            if hits:
                kept.append(pattern)
                todo.difference_update(hits)
        kept.reverse()
        tests = kept

    return TestSet(
        circuit_name=circuit.name,
        inputs=list(inputs),
        patterns=tests,
        detected=detected,
        untestable=untestable,
        aborted=aborted,
        total_faults=len(faults),
    )


def verify_test_set(
    circuit: Circuit,
    test_set: TestSet,
    faults: Optional[Sequence[StuckFault]] = None,
) -> Tuple[int, int]:
    """Fault-simulate a test set; returns (detected, total)."""
    if faults is None:
        faults = fault_universe(circuit)
    sim = FaultSimulator(circuit)
    if not test_set.patterns:
        return 0, len(faults)
    words = _pattern_word(test_set.patterns, test_set.inputs)
    good = sim.good_values(words, len(test_set.patterns))
    detected = sum(
        1 for f in faults
        if sim.detection_word(f, good, len(test_set.patterns))
    )
    return detected, len(faults)
