"""Redundancy identification and removal (the role of [15] in the paper).

An untestable single stuck-at fault is *redundant*: the faulty line can be
tied to its stuck value without changing the circuit function.  Removal
substitutes the constant (for a stem fault) or ties the single gate input
pin (for a branch fault), then constant-propagates and sweeps; the process
repeats until no redundant fault remains, yielding an irredundant circuit.

Identification follows the standard flow: random-pattern fault simulation
first drops the easily-testable faults, then PODEM classifies each survivor
as testable / untestable / aborted.  Aborted faults are conservatively
treated as (possibly) testable and never removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import AnalysisSession
from ..netlist import Circuit, simplify, substitute_with_constant
from ..faults import StuckFault, fault_universe, random_stuck_at_campaign
from .podem import PodemEngine, PodemResult, PodemStatus


@dataclass
class FaultClassification:
    """Per-fault ATPG verdicts for one circuit."""

    testable: List[StuckFault] = field(default_factory=list)
    untestable: List[StuckFault] = field(default_factory=list)
    aborted: List[StuckFault] = field(default_factory=list)
    tests: Dict[StuckFault, Dict[str, int]] = field(default_factory=dict)

    @property
    def is_irredundant(self) -> bool:
        """True when no fault was proven untestable (aborts notwithstanding)."""
        return not self.untestable


def classify_faults(
    circuit: Circuit,
    faults: Optional[Sequence[StuckFault]] = None,
    random_patterns: int = 2048,
    seed: int = 0,
    max_backtracks: int = 600,
) -> FaultClassification:
    """Classify every fault as testable / untestable / aborted.

    Random-pattern simulation (with fault dropping) first; PODEM only for
    the survivors.
    """
    if faults is None:
        faults = fault_universe(circuit)
    result = FaultClassification()
    campaign = random_stuck_at_campaign(
        circuit, faults, seed=seed, max_patterns=random_patterns
    )
    result.testable.extend(
        f for f in faults if f in campaign.first_detection
    )
    engine = PodemEngine(circuit, max_backtracks)
    for fault in campaign.undetected_faults(faults):
        verdict = engine.run(fault)
        if verdict.status is PodemStatus.TESTABLE:
            result.testable.append(fault)
            result.tests[fault] = verdict.test
        elif verdict.status is PodemStatus.UNTESTABLE:
            result.untestable.append(fault)
        else:
            result.aborted.append(fault)
    return result


def _remove_one(circuit: Circuit, fault: StuckFault) -> None:
    """Apply one redundancy removal step for an untestable *fault*."""
    if fault.is_branch:
        const = circuit.fresh_net(f"tie{fault.value}_")
        from ..netlist import GateType

        circuit.add_gate(
            const,
            GateType.CONST1 if fault.value else GateType.CONST0,
            (),
        )
        gate = circuit.gate(fault.reader)
        fanins = list(gate.fanins)
        fanins[fault.pin] = const
        circuit.replace_gate(gate.with_fanins(tuple(fanins)))
        simplify(circuit)
    else:
        substitute_with_constant(circuit, fault.net, fault.value)


@dataclass
class RedundancyRemovalReport:
    """What redundancy removal did to a circuit."""

    circuit: Circuit
    removed_faults: List[StuckFault]
    iterations: int
    aborted_faults: int
    paths_before: int = 0
    paths_after: int = 0

    @property
    def any_removed(self) -> bool:
        """True when at least one redundancy was removed."""
        return bool(self.removed_faults)

    @property
    def path_reduction(self) -> int:
        """PI-to-PO paths eliminated by the removals."""
        return self.paths_before - self.paths_after


def _fault_site_intact(circuit: Circuit, fault: StuckFault) -> bool:
    """Does the fault's site still exist after earlier removals?"""
    if fault.net not in circuit:
        return False
    if fault.is_branch:
        if fault.reader not in circuit:
            return False
        fanins = circuit.gate(fault.reader).fanins
        return fault.pin < len(fanins) and fanins[fault.pin] == fault.net
    return True


def remove_redundancies(
    circuit: Circuit,
    random_patterns: int = 2048,
    seed: int = 0,
    max_backtracks: int = 600,
    max_passes: int = 20,
) -> RedundancyRemovalReport:
    """Iteratively remove redundant faults; returns the modified circuit.

    The circuit is copied; the input is not mutated.  Each full pass
    classifies every fault; the proven-untestable ones are then removed one
    at a time, each re-verified with a single PODEM run first (an earlier
    removal can make a previously-redundant fault testable).  Passes repeat
    until one finds no redundancy, so the fixpoint is an irredundant
    circuit (modulo aborted faults, which are reported and never removed).
    """
    work = circuit.copy()
    # The session rides along for the whole removal loop: every
    # substitute-constant + simplify + sweep step patches its labels
    # incrementally instead of forcing full recomputes.
    session = AnalysisSession(work)
    paths_before = session.total_paths()
    removed: List[StuckFault] = []
    aborted = 0
    passes = 0
    while passes < max_passes:
        passes += 1
        verdicts = classify_faults(
            work,
            random_patterns=random_patterns,
            seed=seed + passes,
            max_backtracks=max_backtracks,
        )
        aborted = len(verdicts.aborted)
        if not verdicts.untestable:
            break
        progress = False
        pending = list(verdicts.untestable)
        first = True
        for fault in pending:
            if not _fault_site_intact(work, fault):
                continue
            if first:
                verdict_ok = True  # fresh classification is authoritative
                first = False
            else:
                engine = PodemEngine(work, max_backtracks)
                verdict_ok = (
                    engine.run(fault).status is PodemStatus.UNTESTABLE
                )
            if verdict_ok:
                _remove_one(work, fault)
                removed.append(fault)
                progress = True
        if not progress:
            break
    work.name = circuit.name
    paths_after = session.total_paths()
    session.close()
    return RedundancyRemovalReport(
        work, removed, passes, aborted,
        paths_before=paths_before, paths_after=paths_after,
    )


def is_irredundant(
    circuit: Circuit,
    random_patterns: int = 2048,
    seed: int = 0,
    max_backtracks: int = 600,
) -> bool:
    """True when no stuck-at fault of *circuit* is provably untestable."""
    return classify_faults(
        circuit, random_patterns=random_patterns, seed=seed,
        max_backtracks=max_backtracks,
    ).is_irredundant
