"""Stuck-at ATPG: PODEM, untestability proofs, redundancy removal."""

from .podem import (
    PodemEngine,
    PodemResult,
    PodemStatus,
    eval_gate3,
    podem,
)
from .testgen import TestSet, generate_test_set, verify_test_set
from .redundancy import (
    FaultClassification,
    RedundancyRemovalReport,
    classify_faults,
    is_irredundant,
    remove_redundancies,
)

__all__ = [
    "FaultClassification",
    "PodemEngine",
    "PodemResult",
    "PodemStatus",
    "RedundancyRemovalReport",
    "TestSet",
    "classify_faults",
    "eval_gate3",
    "generate_test_set",
    "is_irredundant",
    "podem",
    "remove_redundancies",
    "verify_test_set",
]
