"""The incremental-maintenance protocol of :class:`~repro.netlist.Circuit`.

A circuit mutation no longer discards the derived structures wholesale.
Instead every mutation

* patches the fanout map in place,
* repairs the topological order only inside the affected region (the
  Pearce-Kelly dynamic topological-sort algorithm, one repair per
  order-violating edge),
* repairs structural levels with a worklist over the affected transitive
  fanout, and
* bumps a monotonically increasing *mutation epoch* and notifies
  subscribed observers with a :class:`NetChange` event.

Dependent layers (path-label analysis, future simulators) subscribe via
:meth:`Circuit.subscribe` and receive one event per mutation, after the
circuit and its caches are already consistent.  The event kinds are:

``"add"``
    A gate (or primary input) was inserted; ``net`` names it.
``"driver"``
    The gate driving ``net`` was replaced or rewired (its type and/or
    fanin list changed).  Readers of ``net`` are untouched.
``"remove"``
    The gate driving ``net`` was removed (``remove_gate`` or ``sweep``;
    one event per removed net).
``"outputs"``
    The primary-output list changed.  No structural cache depends on it.
``"reset"``
    The circuit was invalidated wholesale (:meth:`Circuit._dirty`);
    observers must drop all derived state.

This module also provides *from-scratch reference rebuilds* of each
derived structure.  They share no code or state with the caches they
mirror, which makes them the ground truth for the ``incremental``
differential oracle (:mod:`repro.verify.oracles`) and the mutation
property tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from .circuit import Circuit

#: Event kinds carried by :class:`NetChange`.
CHANGE_ADD = "add"
CHANGE_DRIVER = "driver"
CHANGE_REMOVE = "remove"
CHANGE_OUTPUTS = "outputs"
CHANGE_RESET = "reset"


@dataclass(frozen=True)
class NetChange:
    """One circuit mutation, as delivered to subscribed observers.

    Attributes
    ----------
    kind:
        One of ``"add"``, ``"driver"``, ``"remove"``, ``"outputs"``,
        ``"reset"``.
    net:
        The affected net, or ``None`` for ``outputs``/``reset`` events.
    """

    kind: str
    net: Optional[str] = None


class CircuitObserver(Protocol):
    """What a :meth:`Circuit.subscribe` listener must implement."""

    def circuit_changed(self, circuit: "Circuit", change: NetChange) -> None:
        """Called once per mutation, after caches are consistent."""
        ...  # pragma: no cover - protocol stub


# --------------------------------------------------------------------- #
# from-scratch reference rebuilds (ground truth for oracles and tests)
# --------------------------------------------------------------------- #


def scratch_fanout_map(circuit: "Circuit") -> Dict[str, List[str]]:
    """Rebuild the fanout map without consulting any cache.

    Reader lists keep one entry per reading pin, like
    :meth:`Circuit.fanout_map`, but their order follows gate insertion
    order; compare against the cache order-insensitively.
    """
    fo: Dict[str, List[str]] = {n: [] for n in circuit.nets()}
    for g in circuit.gates():
        for f in g.fanins:
            fo.setdefault(f, []).append(g.name)
    return fo


def scratch_topological_order(circuit: "Circuit") -> List[str]:
    """Rebuild a topological order without consulting any cache.

    Raises ``ValueError`` on combinational cycles (the oracle treats the
    exception, not the order, as the reference behavior there).
    """
    nets = circuit.nets()
    present = set(nets)
    indeg = {
        n: sum(1 for f in circuit.gate(n).fanins if f in present)
        for n in nets
    }
    fo = scratch_fanout_map(circuit)
    ready = deque(n for n in nets if indeg[n] == 0)
    order: List[str] = []
    while ready:
        n = ready.popleft()
        order.append(n)
        for reader in fo.get(n, ()):
            indeg[reader] -= 1
            if indeg[reader] == 0:
                ready.append(reader)
    if len(order) != len(nets):
        raise ValueError("combinational cycle")
    return order


def scratch_levels(circuit: "Circuit") -> Dict[str, int]:
    """Rebuild structural levels without consulting any cache."""
    lv: Dict[str, int] = {}
    for net in scratch_topological_order(circuit):
        g = circuit.gate(net)
        if g.is_source:
            lv[net] = 0
        else:
            lv[net] = 1 + max((lv[f] for f in g.fanins if f in lv), default=-1)
    return lv


def scratch_path_labels(circuit: "Circuit") -> Dict[str, int]:
    """Rebuild Procedure 1 path labels without consulting any cache."""
    from .types import GateType

    labels: Dict[str, int] = {}
    for net in scratch_topological_order(circuit):
        g = circuit.gate(net)
        if g.gtype is GateType.INPUT:
            labels[net] = 1
        elif g.gtype in (GateType.CONST0, GateType.CONST1):
            labels[net] = 0
        else:
            labels[net] = sum(labels.get(f, 0) for f in g.fanins)
    return labels


def is_valid_topological_order(circuit: "Circuit", order: List[str]) -> bool:
    """True when *order* covers every net once and respects every edge."""
    if sorted(order) != sorted(circuit.nets()):
        return False
    pos = {n: i for i, n in enumerate(order)}
    for g in circuit.gates():
        for f in g.fanins:
            if f in pos and pos[f] >= pos[g.name]:
                return False
    return True
