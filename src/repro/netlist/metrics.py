"""Circuit size metrics.

The paper measures circuit size in *equivalent two-input gates* (Section 5):
a k-input gate counts as k-1 two-input gates, so the result is independent of
how wide gates are decomposed.  Inverters and buffers count zero by default
(they contain no 2-input gate); pass ``count_inverters=True`` to charge each
NOT gate one unit, which some size accountings prefer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .circuit import Circuit
from .types import Gate, GateType, MULTI_INPUT_TYPES, SOURCE_TYPES


def gate_two_input_equivalents(gate: Gate, count_inverters: bool = False) -> int:
    """Equivalent-2-input-gate cost of one gate (k-input gate -> k-1)."""
    if gate.gtype in SOURCE_TYPES:
        return 0
    if gate.gtype in (GateType.BUF, GateType.NOT):
        return 1 if (count_inverters and gate.gtype is GateType.NOT) else 0
    return max(len(gate.fanins) - 1, 0)


def two_input_gate_count(circuit: Circuit, count_inverters: bool = False) -> int:
    """Total equivalent two-input gates in *circuit* (paper's size measure)."""
    return sum(
        gate_two_input_equivalents(g, count_inverters) for g in circuit.gates()
    )


def literal_count(circuit: Circuit) -> int:
    """Total fanin pins over all logic gates (a quick literal estimate).

    The technology-mapped literal counts of Table 4 come from
    :mod:`repro.techmap`; this structural count is used for progress
    reporting only.
    """
    return sum(
        len(g.fanins) for g in circuit.gates() if g.gtype not in SOURCE_TYPES
    )


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics for reports (Tables 2/3/5 style columns)."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    two_input_gates: int
    n_literals: int
    depth: int

    def row(self) -> Dict[str, int]:
        """Return the stats as a plain dict (for table formatting)."""
        return {
            "inputs": self.n_inputs,
            "outputs": self.n_outputs,
            "gates": self.n_gates,
            "2-inp": self.two_input_gates,
            "literals": self.n_literals,
            "depth": self.depth,
        }


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute a :class:`CircuitStats` summary of *circuit*."""
    return CircuitStats(
        name=circuit.name,
        n_inputs=len(circuit.inputs),
        n_outputs=len(circuit.outputs),
        n_gates=len(circuit.logic_gates()),
        two_input_gates=two_input_gate_count(circuit),
        n_literals=literal_count(circuit),
        depth=circuit.depth(),
    )
