"""Structural cleanup transforms: constant propagation, buffer collapsing,
duplicate-fanin reduction and dead-logic sweep.

These transforms preserve the circuit function exactly; they are the shared
substrate for redundancy removal (:mod:`repro.atpg.redundancy`) and for tidying
resynthesized circuits.  All of them mutate the circuit in place and return a
count of changes, and :func:`simplify` iterates them to a fixpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .circuit import Circuit
from .types import Gate, GateType


def _fold_gate(circuit: Circuit, gate: Gate) -> Optional[Gate]:
    """Return a simplified replacement for *gate*, or None if unchanged.

    Handles constant fanins, duplicate fanins, and arity degeneration
    (e.g. a 2-input AND whose second fanin folded away becomes a BUF).
    """
    g = gate.gtype
    if g in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
        return None

    fanin_types = [circuit.gate(f).gtype for f in gate.fanins]

    if g in (GateType.BUF, GateType.NOT):
        ft = fanin_types[0]
        if ft is GateType.CONST0:
            out = GateType.CONST0 if g is GateType.BUF else GateType.CONST1
            return Gate(gate.name, out)
        if ft is GateType.CONST1:
            out = GateType.CONST1 if g is GateType.BUF else GateType.CONST0
            return Gate(gate.name, out)
        # NOT(NOT(x)) -> BUF(x);  BUF(NOT(x)) -> NOT(x) is just an alias.
        inner = circuit.gate(gate.fanins[0])
        if g is GateType.NOT and inner.gtype is GateType.NOT:
            return Gate(gate.name, GateType.BUF, inner.fanins)
        return None

    if g in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
        and_like = g in (GateType.AND, GateType.NAND)
        inverted = g in (GateType.NAND, GateType.NOR)
        ctrl = GateType.CONST0 if and_like else GateType.CONST1
        ident = GateType.CONST1 if and_like else GateType.CONST0
        if ctrl in fanin_types:
            # A controlling constant fixes the output.
            fixed = (0 if and_like else 1) ^ (1 if inverted else 0)
            return Gate(gate.name, GateType.CONST1 if fixed else GateType.CONST0)
        kept: List[str] = []
        seen = set()
        for f, ft in zip(gate.fanins, fanin_types):
            if ft is ident:
                continue
            if f in seen:  # x AND x = x ; x OR x = x
                continue
            seen.add(f)
            kept.append(f)
        if len(kept) == len(gate.fanins):
            return None
        if not kept:
            fixed = (1 if and_like else 0) ^ (1 if inverted else 0)
            return Gate(gate.name, GateType.CONST1 if fixed else GateType.CONST0)
        if len(kept) == 1:
            return Gate(gate.name, GateType.NOT if inverted else GateType.BUF,
                        (kept[0],))
        return Gate(gate.name, g, tuple(kept))

    if g in (GateType.XOR, GateType.XNOR):
        parity_flip = g is GateType.XNOR
        counts: Dict[str, int] = {}
        order: List[str] = []
        for f, ft in zip(gate.fanins, fanin_types):
            if ft is GateType.CONST0:
                continue
            if ft is GateType.CONST1:
                parity_flip = not parity_flip
                continue
            if f not in counts:
                counts[f] = 0
                order.append(f)
            counts[f] += 1
        kept = [f for f in order if counts[f] % 2 == 1]
        if len(kept) == len(gate.fanins) and parity_flip == (g is GateType.XNOR):
            return None
        if not kept:
            return Gate(gate.name,
                        GateType.CONST1 if parity_flip else GateType.CONST0)
        if len(kept) == 1:
            return Gate(gate.name,
                        GateType.NOT if parity_flip else GateType.BUF,
                        (kept[0],))
        return Gate(gate.name, GateType.XNOR if parity_flip else GateType.XOR,
                    tuple(kept))

    return None


def propagate_constants(circuit: Circuit) -> int:
    """Fold constants and degenerate gates in place; return change count.

    Runs a single topological pass; :func:`simplify` iterates passes to a
    fixpoint.
    """
    changes = 0
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        folded = _fold_gate(circuit, gate)
        if folded is not None:
            circuit.replace_gate(folded)
            changes += 1
    return changes


def collapse_buffers(circuit: Circuit) -> int:
    """Bypass every internal BUF gate (readers point at its fanin).

    Primary-output BUFs are kept untouched: primary-output net names are
    part of the circuit interface and must survive every transform.
    Returns the number of buffers bypassed.
    """
    changes = 0
    output_set = circuit.output_set
    for net in list(circuit.topological_order()):
        if not circuit.has_net(net) or net in output_set:
            continue
        gate = circuit.gate(net)
        if gate.gtype is not GateType.BUF:
            continue
        circuit.substitute_net(net, gate.fanins[0])
        changes += 1
    return changes


def simplify(circuit: Circuit) -> int:
    """Constant-propagate, collapse buffers and sweep to a fixpoint.

    Mutates *circuit* in place; returns the total number of local changes.
    """
    total = 0
    while True:
        changed = propagate_constants(circuit)
        changed += collapse_buffers(circuit)
        changed += circuit.sweep()
        total += changed
        if not changed:
            return total


def decompose_two_input(circuit: Circuit) -> Circuit:
    """Return a copy with every wide gate split into 2-input gates.

    Balanced trees, output net names preserved.  Both of the paper's
    metrics are invariant under this transform: a k-input gate counts
    ``k-1`` equivalent 2-input gates either way, and each input pin still
    carries exactly one path to the gate output.  The resynthesis
    procedures run on the decomposed form so that candidate-subcircuit
    growth (bounded by ``K`` inputs) can tunnel through what used to be a
    wide gate.
    """
    out = Circuit(circuit.name)
    for pi in circuit.inputs:
        out.add_input(pi)
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        name = f"d{counter[0]}"
        while circuit.has_net(name) or out.has_net(name):
            counter[0] += 1
            name = f"d{counter[0]}"
        return name

    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gtype
        if gt is GateType.INPUT:
            continue
        fis = list(gate.fanins)
        if len(fis) <= 2:
            out.add_gate(net, gt, fis)
            continue
        # Core associative reduction (AND for NAND, OR for NOR, XOR for
        # XNOR), inversion folded into the final gate.
        core = {
            GateType.AND: GateType.AND, GateType.NAND: GateType.AND,
            GateType.OR: GateType.OR, GateType.NOR: GateType.OR,
            GateType.XOR: GateType.XOR, GateType.XNOR: GateType.XOR,
        }[gt]
        level = fis
        while len(level) > 2:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(out.add_gate(fresh(), core, level[i:i + 2]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        out.add_gate(net, gt, level)
    out.set_outputs(circuit.outputs)
    out.validate()
    return out


def substitute_with_constant(circuit: Circuit, net: str, value: int) -> None:
    """Replace the gate driving *net* with a constant and simplify.

    This is the primitive step of redundancy removal: an untestable
    stuck-at-*value* fault on *net* means *net* may be fixed at *value*.
    """
    gtype = GateType.CONST1 if value else GateType.CONST0
    gate = circuit.gate(net)
    if gate.gtype is GateType.INPUT:
        # Keep the PI itself; give its readers a constant instead.
        const_net = circuit.fresh_net(f"const{value}_")
        circuit.add_gate(const_net, gtype, ())
        circuit.substitute_net(net, const_net)
    else:
        circuit.replace_gate(Gate(net, gtype))
    simplify(circuit)
