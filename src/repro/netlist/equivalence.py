"""Combinational equivalence checking.

Two flavours:

* :func:`random_equivalent` — bit-parallel random simulation (fast, can
  only refute);
* :func:`formally_equivalent` — complete: builds a *miter* (XOR each
  output pair, OR the XORs) and asks the PODEM engine whether the miter
  output's stuck-at-0 fault is testable.  A test for that fault is exactly
  an input pattern setting the miter to 1 — a counterexample; proven
  untestability means the miter is constant 0, i.e. the circuits are
  equivalent.  PODEM's branch-on-all-PI-values completeness makes this a
  sound decision procedure (with an abort budget for hard instances).

The resynthesis procedures use the random check inline; the test suite
formally verifies the procedure outputs on the fixture circuits.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .circuit import Circuit, CircuitError
from .types import GateType


class EquivalenceStatus(enum.Enum):
    """Verdict of an equivalence check."""

    EQUIVALENT = "equivalent"
    DIFFERENT = "different"
    UNDECIDED = "undecided"


@dataclass
class EquivalenceResult:
    """Verdict plus a counterexample when one exists."""

    status: EquivalenceStatus
    counterexample: Optional[Dict[str, int]] = None

    @property
    def equivalent(self) -> bool:
        """True only for a proven-equivalent verdict."""
        return self.status is EquivalenceStatus.EQUIVALENT


def build_miter(a: Circuit, b: Circuit) -> Tuple[Circuit, str]:
    """The miter of two interface-identical circuits.

    Returns ``(miter, output_net)``: the miter computes 1 exactly on the
    inputs where some output pair differs.
    """
    if a.inputs != b.inputs:
        raise CircuitError("miter needs identical input lists")
    if a.outputs != b.outputs:
        raise CircuitError("miter needs identical output lists")

    miter = Circuit(f"miter({a.name},{b.name})")
    for pi in a.inputs:
        miter.add_input(pi)

    def import_circuit(src: Circuit, tag: str) -> Dict[str, str]:
        mapping = {pi: pi for pi in src.inputs}
        for net in src.topological_order():
            gate = src.gate(net)
            if gate.gtype is GateType.INPUT:
                continue
            new = f"{tag}_{net}"
            miter.add_gate(
                new, gate.gtype, tuple(mapping[f] for f in gate.fanins)
            )
            mapping[net] = new
        return mapping

    map_a = import_circuit(a, "a")
    map_b = import_circuit(b, "b")
    xors = []
    for i, (oa, ob) in enumerate(zip(a.outputs, b.outputs)):
        xors.append(
            miter.add_gate(f"diff{i}", GateType.XOR,
                           (map_a[oa], map_b[ob]))
        )
    if len(xors) == 1:
        out = miter.add_gate("miter_out", GateType.BUF, (xors[0],))
    else:
        out = miter.add_gate("miter_out", GateType.OR, tuple(xors))
    miter.set_outputs([out])
    miter.validate()
    return miter, out


def random_equivalent(
    a: Circuit, b: Circuit, n_patterns: int = 4096, seed: int = 0
) -> EquivalenceResult:
    """Random-simulation check: refutes with a counterexample or undecided."""
    from ..sim.logicsim import simulate
    from ..sim.patterns import random_words

    if a.inputs != b.inputs or a.outputs != b.outputs:
        return EquivalenceResult(EquivalenceStatus.DIFFERENT)
    rng = random.Random(seed)
    words = random_words(a.inputs, n_patterns, rng)
    va = simulate(a, words, n_patterns)
    vb = simulate(b, words, n_patterns)
    diff = 0
    for o in a.output_set:
        diff |= va[o] ^ vb[o]
    if diff:
        bit = (diff & -diff).bit_length() - 1
        cex = {pi: (words[pi] >> bit) & 1 for pi in a.inputs}
        return EquivalenceResult(EquivalenceStatus.DIFFERENT, cex)
    return EquivalenceResult(EquivalenceStatus.UNDECIDED)


def formally_equivalent(
    a: Circuit,
    b: Circuit,
    random_patterns: int = 1024,
    max_backtracks: int = 200_000,
    seed: int = 0,
) -> EquivalenceResult:
    """Complete equivalence check via the miter + PODEM.

    Random simulation first (fast refutation), then the decision
    procedure.  ``UNDECIDED`` is returned only when PODEM aborts on the
    backtrack budget.
    """
    quick = random_equivalent(a, b, random_patterns, seed)
    if quick.status is EquivalenceStatus.DIFFERENT:
        return quick

    from ..atpg.podem import PodemEngine, PodemStatus
    from ..faults import StuckFault

    miter, out = build_miter(a, b)
    engine = PodemEngine(miter, max_backtracks)
    verdict = engine.run(StuckFault(out, 0))
    if verdict.status is PodemStatus.UNTESTABLE:
        return EquivalenceResult(EquivalenceStatus.EQUIVALENT)
    if verdict.status is PodemStatus.TESTABLE:
        return EquivalenceResult(EquivalenceStatus.DIFFERENT, verdict.test)
    return EquivalenceResult(EquivalenceStatus.UNDECIDED)