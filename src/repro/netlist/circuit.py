"""The :class:`Circuit` container: a combinational gate-level netlist.

A circuit is a DAG of :class:`~repro.netlist.types.Gate` records keyed by
output net name, plus an ordered list of primary output nets.  Primary inputs
are gates of type ``INPUT``.  The class offers structural queries (fanout,
topological order, levels, transitive fanin cones) and mutation primitives
used by the resynthesis procedures (gate insertion/removal, fanin rewiring).

Derived structures (fanout map, topological order, levels) are cached and
invalidated on any mutation; callers never manage cache state themselves.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .types import Gate, GateType, SOURCE_TYPES, arity_ok


class CircuitError(Exception):
    """Raised for structurally invalid circuit operations."""


class Circuit:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Human-readable circuit name (used in reports and file headers).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._outputs: List[str] = []
        self._input_order: List[str] = []
        self._dirty()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        self._insert(Gate(name, GateType.INPUT))
        self._input_order.append(name)
        return name

    def add_gate(self, name: str, gtype: GateType, fanins: Sequence[str]) -> str:
        """Add a gate whose output net is *name*; return the net name.

        Fanin nets need not exist yet (circuits may be built in any order);
        :meth:`validate` checks full consistency.
        """
        if gtype is GateType.INPUT:
            raise CircuitError("use add_input() for primary inputs")
        self._insert(Gate(name, gtype, tuple(fanins)))
        return name

    def add_output(self, net: str) -> None:
        """Mark *net* as a primary output (appended to output order)."""
        self._outputs.append(net)
        self._dirty()

    def set_outputs(self, nets: Sequence[str]) -> None:
        """Replace the primary output list."""
        self._outputs = list(nets)
        self._dirty()

    def _insert(self, gate: Gate) -> None:
        if gate.name in self._gates:
            raise CircuitError(f"duplicate net name {gate.name!r}")
        self._gates[gate.name] = gate
        self._dirty()

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def inputs(self) -> List[str]:
        """Primary input nets, in declaration order."""
        return [n for n in self._input_order if n in self._gates]

    @property
    def outputs(self) -> List[str]:
        """Primary output nets, in declaration order (may repeat)."""
        return list(self._outputs)

    @property
    def output_set(self) -> Set[str]:
        """The set of distinct primary output nets."""
        return set(self._outputs)

    def gate(self, net: str) -> Gate:
        """Return the gate driving *net* (raises ``KeyError`` if absent)."""
        return self._gates[net]

    def has_net(self, net: str) -> bool:
        """True when *net* exists in the circuit."""
        return net in self._gates

    def gates(self) -> Iterator[Gate]:
        """Iterate over all gates (including INPUT markers), insertion order."""
        return iter(self._gates.values())

    def nets(self) -> List[str]:
        """All net names, insertion order."""
        return list(self._gates.keys())

    def logic_gates(self) -> List[Gate]:
        """All non-source gates (excludes INPUT and constants)."""
        return [g for g in self._gates.values() if g.gtype not in SOURCE_TYPES]

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, net: str) -> bool:
        return net in self._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self._outputs)}, gates={len(self.logic_gates())})"
        )

    # ------------------------------------------------------------------ #
    # cached derived structures
    # ------------------------------------------------------------------ #

    def _dirty(self) -> None:
        self._topo_cache: Optional[List[str]] = None
        self._fanout_cache: Optional[Dict[str, List[str]]] = None
        self._level_cache: Optional[Dict[str, int]] = None

    def fanouts(self, net: str) -> List[str]:
        """Nets of gates that read *net* (one entry per reading gate).

        A gate reading *net* on several of its pins appears once per pin, so
        the result enumerates fanout *branches*, matching the paper's model.
        """
        return self.fanout_map().get(net, [])

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map net -> list of reader gate output nets (branch per pin)."""
        if self._fanout_cache is None:
            fo: Dict[str, List[str]] = {n: [] for n in self._gates}
            for g in self._gates.values():
                for f in g.fanins:
                    if f in fo:
                        fo[f].append(g.name)
                    else:  # dangling reference; validate() reports it
                        fo.setdefault(f, []).append(g.name)
            self._fanout_cache = fo
        return self._fanout_cache

    def topological_order(self) -> List[str]:
        """Net names in topological (fanin-before-fanout) order.

        Deterministic: ties are broken by insertion order.  Raises
        :class:`CircuitError` on combinational cycles.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indeg: Dict[str, int] = {}
        for name, g in self._gates.items():
            indeg[name] = sum(1 for f in g.fanins if f in self._gates)
        from collections import deque

        ready = deque(n for n in self._gates if indeg[n] == 0)
        order: List[str] = []
        fo = self.fanout_map()
        while ready:
            n = ready.popleft()
            order.append(n)
            for reader in fo.get(n, ()):  # may repeat per pin; guard below
                indeg[reader] -= 1
                if indeg[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self._gates):
            cyclic = sorted(set(self._gates) - set(order))
            raise CircuitError(f"combinational cycle involving {cyclic[:5]}")
        self._topo_cache = order
        return order

    def levels(self) -> Dict[str, int]:
        """Map net -> structural level (inputs/constants at level 0)."""
        if self._level_cache is None:
            lv: Dict[str, int] = {}
            for net in self.topological_order():
                g = self._gates[net]
                if g.is_source:
                    lv[net] = 0
                else:
                    lv[net] = 1 + max(
                        (lv[f] for f in g.fanins if f in lv), default=-1
                    )
            self._level_cache = lv
        return self._level_cache

    def depth(self) -> int:
        """Number of gate levels on the longest input-to-output path."""
        lv = self.levels()
        return max((lv[o] for o in self._outputs if o in lv), default=0)

    # ------------------------------------------------------------------ #
    # cones
    # ------------------------------------------------------------------ #

    def transitive_fanin(self, nets: Iterable[str]) -> Set[str]:
        """All nets (inclusive) in the transitive fanin of *nets*."""
        seen: Set[str] = set()
        stack = [n for n in nets]
        while stack:
            n = stack.pop()
            if n in seen or n not in self._gates:
                continue
            seen.add(n)
            stack.extend(self._gates[n].fanins)
        return seen

    def transitive_fanout(self, nets: Iterable[str]) -> Set[str]:
        """All nets (inclusive) in the transitive fanout of *nets*."""
        fo = self.fanout_map()
        seen: Set[str] = set()
        stack = [n for n in nets]
        while stack:
            n = stack.pop()
            if n in seen or n not in self._gates:
                continue
            seen.add(n)
            stack.extend(fo.get(n, ()))
        return seen

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def replace_gate(self, gate: Gate) -> None:
        """Replace the gate driving ``gate.name`` (net must exist)."""
        if gate.name not in self._gates:
            raise CircuitError(f"no net {gate.name!r} to replace")
        if gate.gtype is GateType.INPUT and self._gates[gate.name].gtype is not GateType.INPUT:
            raise CircuitError("cannot turn an internal net into a primary input")
        self._gates[gate.name] = gate
        self._dirty()

    def remove_gate(self, net: str) -> None:
        """Remove the gate driving *net*.

        The net must have no readers and must not be a primary output; use
        :meth:`sweep` to remove dead logic wholesale.
        """
        if net not in self._gates:
            raise CircuitError(f"no net {net!r}")
        if self.fanouts(net):
            raise CircuitError(f"net {net!r} still has readers")
        if net in self._outputs:
            raise CircuitError(f"net {net!r} is a primary output")
        g = self._gates.pop(net)
        if g.gtype is GateType.INPUT:
            self._input_order.remove(net)
        self._dirty()

    def rewire_fanin(self, net: str, old: str, new: str) -> None:
        """On the gate driving *net*, replace every fanin *old* with *new*."""
        g = self._gates[net]
        if old not in g.fanins:
            raise CircuitError(f"{net!r} has no fanin {old!r}")
        self._gates[net] = g.with_fanins(
            tuple(new if f == old else f for f in g.fanins)
        )
        self._dirty()

    def substitute_net(self, old: str, new: str) -> None:
        """Redirect every reader of *old* to *new*, preserving the interface.

        Primary-output net names are never rewritten: when *old* is a
        primary output (and not a primary input), its driver becomes
        ``BUF(new)`` so the output keeps its name and its new function.
        The old gate is otherwise left in place (possibly dead); call
        :meth:`sweep` to collect it.
        """
        if old == new:
            return
        for reader in list(self.fanouts(old)):
            self.rewire_fanin(reader, old, new)
        if old in self._outputs and self._gates[old].gtype is not GateType.INPUT:
            self._gates[old] = Gate(old, GateType.BUF, (new,))
        self._dirty()

    def sweep(self) -> int:
        """Remove logic that cannot reach any primary output.

        Primary inputs are never removed (the interface is preserved, as the
        paper's procedures require: modified circuits keep the same I/O).
        Returns the number of gates removed.
        """
        live = self.transitive_fanin(self._outputs)
        removed = 0
        for net in [n for n in self._gates if n not in live]:
            if self._gates[net].gtype is GateType.INPUT:
                continue
            del self._gates[net]
            removed += 1
        if removed:
            self._dirty()
        return removed

    def fresh_net(self, prefix: str = "n") -> str:
        """Return a net name not yet used in the circuit."""
        i = len(self._gates)
        while True:
            cand = f"{prefix}{i}"
            if cand not in self._gates:
                return cand
            i += 1

    # ------------------------------------------------------------------ #
    # validation / copying
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`CircuitError` on any structural inconsistency."""
        for name, g in self._gates.items():
            if name != g.name:
                raise CircuitError(f"key {name!r} != gate name {g.name!r}")
            if not arity_ok(g.gtype, len(g.fanins)):
                raise CircuitError(
                    f"gate {name!r}: bad arity {len(g.fanins)} for {g.gtype.value}"
                )
            for f in g.fanins:
                if f not in self._gates:
                    raise CircuitError(f"gate {name!r} reads undriven net {f!r}")
        for o in self._outputs:
            if o not in self._gates:
                raise CircuitError(f"primary output {o!r} is undriven")
        if not self._outputs:
            raise CircuitError("circuit has no primary outputs")
        self.topological_order()  # raises on cycles

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep-copy the circuit (gates are immutable, so sharing is safe)."""
        c = Circuit(name if name is not None else self.name)
        c._gates = dict(self._gates)
        c._outputs = list(self._outputs)
        c._input_order = list(self._input_order)
        c._dirty()
        return c

    def structurally_equal(self, other: "Circuit") -> bool:
        """True when both circuits have identical gates, inputs and outputs."""
        return (
            self._gates == other._gates
            and self._outputs == other._outputs
            and self.inputs == other.inputs
        )
