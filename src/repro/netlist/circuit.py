"""The :class:`Circuit` container: a combinational gate-level netlist.

A circuit is a DAG of :class:`~repro.netlist.types.Gate` records keyed by
output net name, plus an ordered list of primary output nets.  Primary inputs
are gates of type ``INPUT``.  The class offers structural queries (fanout,
topological order, levels, transitive fanin cones) and mutation primitives
used by the resynthesis procedures (gate insertion/removal, fanin rewiring).

Derived structures are maintained *incrementally* (see
:mod:`repro.netlist.incremental` for the protocol):

* the fanout map is patched in place on every mutation;
* a *live* topological order is repaired only within the affected region
  using the Pearce-Kelly dynamic topological-sort algorithm, and orders
  the worklist that repairs structural levels;
* the *canonical* topological order served by :meth:`topological_order`
  and :meth:`topo_rank` (insertion-order tie-break, the order every
  deterministic consumer iterates) is rebuilt lazily at most once per
  mutation epoch;
* every mutation bumps :attr:`epoch` and notifies subscribed observers
  with a :class:`~repro.netlist.incremental.NetChange`.

Callers never manage cache state themselves.  :meth:`_dirty` remains as
the wholesale invalidation fallback for code that mutates internals
directly.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .incremental import (
    CHANGE_ADD,
    CHANGE_DRIVER,
    CHANGE_OUTPUTS,
    CHANGE_REMOVE,
    CHANGE_RESET,
    CircuitObserver,
    NetChange,
)
from .types import Gate, GateType, SOURCE_TYPES, arity_ok


class CircuitError(Exception):
    """Raised for structurally invalid circuit operations."""


class Circuit:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Human-readable circuit name (used in reports and file headers).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._outputs: List[str] = []
        self._input_order: List[str] = []
        self._epoch: int = 0
        self._subscribers: List[CircuitObserver] = []
        self._fresh_counters: Dict[str, int] = {}
        self._dirty()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        self._insert(Gate(name, GateType.INPUT))
        self._input_order.append(name)
        return name

    def add_gate(self, name: str, gtype: GateType, fanins: Sequence[str]) -> str:
        """Add a gate whose output net is *name*; return the net name.

        Fanin nets need not exist yet (circuits may be built in any order);
        :meth:`validate` checks full consistency.
        """
        if gtype is GateType.INPUT:
            raise CircuitError("use add_input() for primary inputs")
        self._insert(Gate(name, gtype, tuple(fanins)))
        return name

    def add_output(self, net: str) -> None:
        """Mark *net* as a primary output (appended to output order)."""
        self._outputs.append(net)
        self._note(CHANGE_OUTPUTS)

    def set_outputs(self, nets: Sequence[str]) -> None:
        """Replace the primary output list."""
        self._outputs = list(nets)
        self._note(CHANGE_OUTPUTS)

    def _insert(self, gate: Gate) -> None:
        if gate.name in self._gates:
            raise CircuitError(f"duplicate net name {gate.name!r}")
        self._gates[gate.name] = gate
        fo = self._fanout_cache
        if fo is not None:
            fo.setdefault(gate.name, [])
            for f in gate.fanins:
                fo.setdefault(f, []).append(gate.name)
            if self._live_pos is not None:
                self._live_insert(gate.name)
                # The new net may resolve reads that previously dangled,
                # changing its readers' levels as well as its own.
                seeds = [gate.name]
                seeds.extend(fo.get(gate.name, ()))
                self._repair_levels(seeds)
        self._note(CHANGE_ADD, gate.name)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def inputs(self) -> List[str]:
        """Primary input nets, in declaration order."""
        return [n for n in self._input_order if n in self._gates]

    @property
    def outputs(self) -> List[str]:
        """Primary output nets, in declaration order (may repeat)."""
        return list(self._outputs)

    @property
    def output_set(self) -> Set[str]:
        """The set of distinct primary output nets."""
        return set(self._outputs)

    def gate(self, net: str) -> Gate:
        """Return the gate driving *net* (raises ``KeyError`` if absent)."""
        return self._gates[net]

    def has_net(self, net: str) -> bool:
        """True when *net* exists in the circuit."""
        return net in self._gates

    def gates(self) -> Iterator[Gate]:
        """Iterate over all gates (including INPUT markers), insertion order."""
        return iter(self._gates.values())

    def nets(self) -> List[str]:
        """All net names, insertion order."""
        return list(self._gates.keys())

    def logic_gates(self) -> List[Gate]:
        """All non-source gates (excludes INPUT and constants)."""
        return [g for g in self._gates.values() if g.gtype not in SOURCE_TYPES]

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, net: str) -> bool:
        return net in self._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self._outputs)}, gates={len(self.logic_gates())})"
        )

    # ------------------------------------------------------------------ #
    # mutation epoch + subscriber protocol
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter (one tick per mutation event)."""
        return self._epoch

    def subscribe(self, observer: CircuitObserver) -> None:
        """Register *observer* for per-mutation :class:`NetChange` events."""
        self._subscribers.append(observer)

    def unsubscribe(self, observer: CircuitObserver) -> None:
        """Remove *observer*; silently ignores unknown observers."""
        try:
            self._subscribers.remove(observer)
        except ValueError:
            pass

    def _note(self, kind: str, net: Optional[str] = None) -> None:
        """Bump the epoch and deliver one event to every subscriber."""
        self._epoch += 1
        if self._subscribers:
            change = NetChange(kind, net)
            for sub in list(self._subscribers):
                sub.circuit_changed(self, change)

    # ------------------------------------------------------------------ #
    # cached derived structures
    # ------------------------------------------------------------------ #

    def _dirty(self) -> None:
        """Invalidate every derived structure wholesale.

        This is the safety fallback for code that mutates ``_gates`` or
        ``_outputs`` directly; the mutation API never needs it.
        """
        self._fanout_cache: Optional[Dict[str, List[str]]] = None
        # canonical order: insertion-order Kahn, rebuilt per epoch on query
        self._canon_order: Optional[List[str]] = None
        self._canon_pos: Optional[Dict[str, int]] = None
        self._canon_epoch: int = -1
        # live order: Pearce-Kelly maintained, repaired in place per mutation
        self._live_order: Optional[List[Optional[str]]] = None
        self._live_pos: Optional[Dict[str, int]] = None
        self._live_holes: int = 0
        self._level_cache: Optional[Dict[str, int]] = None
        self._note(CHANGE_RESET)

    def fanouts(self, net: str) -> List[str]:
        """Nets of gates that read *net* (one entry per reading gate).

        A gate reading *net* on several of its pins appears once per pin, so
        the result enumerates fanout *branches*, matching the paper's model.
        """
        return self.fanout_map().get(net, [])

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map net -> list of reader gate output nets (branch per pin).

        Built once, then patched in place by every mutation; the returned
        dict is live and stays accurate across mutations.
        """
        if self._fanout_cache is None:
            fo: Dict[str, List[str]] = {n: [] for n in self._gates}
            for g in self._gates.values():
                for f in g.fanins:
                    if f in fo:
                        fo[f].append(g.name)
                    else:  # dangling reference; validate() reports it
                        fo.setdefault(f, []).append(g.name)
            self._fanout_cache = fo
        return self._fanout_cache

    def _fo_del_pin(self, src: str, reader: str) -> None:
        fo = self._fanout_cache
        lst = fo[src]
        lst.remove(reader)
        if not lst and src not in self._gates:
            del fo[src]  # emptied entry of a dangling net

    def _fo_add_pin(self, src: str, reader: str) -> None:
        self._fanout_cache.setdefault(src, []).append(reader)

    def topological_order(self) -> List[str]:
        """Net names in topological (fanin-before-fanout) order.

        Deterministic: ties are broken by insertion order, independent of
        the mutation history that produced the circuit.  Raises
        :class:`CircuitError` on combinational cycles.
        """
        if self._canon_pos is None or self._canon_epoch != self._epoch:
            self._build_canonical()
        return self._canon_order

    def topo_rank(self, net: str) -> int:
        """Position of *net* in :meth:`topological_order`.

        O(1) after the per-epoch canonical order is built; use as a sort
        key instead of building a position dict from the full order.
        """
        if self._canon_pos is None or self._canon_epoch != self._epoch:
            self._build_canonical()
        return self._canon_pos[net]

    def _build_canonical(self) -> None:
        indeg: Dict[str, int] = {}
        for name, g in self._gates.items():
            indeg[name] = sum(1 for f in g.fanins if f in self._gates)
        ready = deque(n for n in self._gates if indeg[n] == 0)
        order: List[str] = []
        # Deliberately NOT the patched fanout cache: its reader-list order
        # is mutation-history dependent, which would leak history into the
        # canonical order.  A local insertion-order fanout keeps the order
        # a pure function of the current gate dict.
        fo: Dict[str, List[str]] = {}
        for name, g in self._gates.items():
            for f in g.fanins:
                fo.setdefault(f, []).append(name)
        while ready:
            n = ready.popleft()
            order.append(n)
            for reader in fo.get(n, ()):  # may repeat per pin; guard below
                indeg[reader] -= 1
                if indeg[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self._gates):
            cyclic = sorted(set(self._gates) - set(order))
            raise CircuitError(f"combinational cycle involving {cyclic[:5]}")
        self._canon_order = order
        self._canon_pos = {n: i for i, n in enumerate(order)}
        self._canon_epoch = self._epoch

    # -- live (Pearce-Kelly) order ------------------------------------- #

    def _ensure_live(self) -> None:
        """Build the live order (and fanout map) if absent."""
        if self._live_pos is not None:
            return
        order = list(self.topological_order())  # raises on cycles
        self._live_order = order
        self._live_pos = {n: i for i, n in enumerate(order)}
        self._live_holes = 0

    def _drop_live(self) -> None:
        """Forget the live order and everything keyed on it (levels)."""
        self._live_order = None
        self._live_pos = None
        self._live_holes = 0
        self._level_cache = None

    def _live_insert(self, name: str) -> None:
        """Append *name* to the live order, repairing resolved dangling reads."""
        order, pos = self._live_order, self._live_pos
        order.append(name)
        pos[name] = len(order) - 1
        # Readers that referenced the name while it dangled now sit at
        # smaller positions: each such edge needs a Pearce-Kelly repair.
        for reader in set(self._fanout_cache.get(name, ())):
            pos = self._live_pos
            if pos is None:
                return  # an earlier repair found a cycle and bailed
            if reader in pos and pos[reader] < pos[name]:
                self._pk_repair(name, reader)

    def _live_remove(self, net: str) -> None:
        pos = self._live_pos
        if pos is None:
            return
        p = pos.pop(net, None)
        if p is not None:
            self._live_order[p] = None
            self._live_holes += 1
            if self._live_holes > 64 and self._live_holes * 2 > len(self._live_order):
                self._compact_live()

    def _compact_live(self) -> None:
        order = [n for n in self._live_order if n is not None]
        self._live_order = order
        self._live_pos = {n: i for i, n in enumerate(order)}
        self._live_holes = 0

    def _live_driver_changed(self, name: str, new_fanins: Iterable[str]) -> None:
        """Repair the live order for fanins that now sit after *name*."""
        if self._live_pos is None:
            return
        for f in set(new_fanins):
            pos = self._live_pos
            if pos is None:
                return  # an earlier repair found a cycle and bailed
            pf = pos.get(f)
            if pf is not None and pf > pos[name]:
                self._pk_repair(f, name)

    def _pk_repair(self, u: str, v: str) -> None:
        """Restore live-order validity for the edge ``u -> v``.

        Precondition: ``pos[u] > pos[v]``.  Pearce-Kelly: find the nets in
        the affected region — forward-reachable from *v* or
        backward-reachable from *u*, within the position window — and
        redistribute them over their own (sorted) position slots, backward
        set first.  Only the affected region is touched.

        If the edge closes a cycle the live order cannot be repaired; the
        live caches are dropped and the next :meth:`topological_order`
        rebuild raises :class:`CircuitError`, exactly as before.
        """
        pos = self._live_pos
        order = self._live_order
        fo = self._fanout_cache
        ub = pos[u]
        lb = pos[v]
        fwd: List[str] = []
        seen_f = {v}
        stack = [v]
        while stack:
            n = stack.pop()
            fwd.append(n)
            for r in fo.get(n, ()):
                if r in seen_f:
                    continue
                pr = pos.get(r)
                if pr is None:
                    continue
                if pr == ub:  # reached u: the edge closes a cycle
                    self._drop_live()
                    return
                if pr < ub:
                    seen_f.add(r)
                    stack.append(r)
        back: List[str] = []
        seen_b = {u}
        stack = [u]
        while stack:
            n = stack.pop()
            back.append(n)
            for f in self._gates[n].fanins:
                if f in seen_b:
                    continue
                pf = pos.get(f)
                if pf is None or pf <= lb:
                    continue
                seen_b.add(f)
                stack.append(f)
        back.sort(key=pos.__getitem__)
        fwd.sort(key=pos.__getitem__)
        affected = back + fwd
        slots = sorted(pos[n] for n in affected)
        for slot, n in zip(slots, affected):
            order[slot] = n
            pos[n] = slot

    # -- levels --------------------------------------------------------- #

    def levels(self) -> Dict[str, int]:
        """Map net -> structural level (inputs/constants at level 0).

        Built once (over the canonical order), then repaired only within
        the affected transitive fanout on every mutation.
        """
        if self._level_cache is None:
            self._ensure_live()
            lv: Dict[str, int] = {}
            for net in self.topological_order():
                g = self._gates[net]
                if g.is_source:
                    lv[net] = 0
                else:
                    lv[net] = 1 + max(
                        (lv[f] for f in g.fanins if f in lv), default=-1
                    )
            self._level_cache = lv
        return self._level_cache

    def _repair_levels(self, seeds: Iterable[str]) -> None:
        """Worklist level repair seeded at *seeds*, in live-order rank.

        Processing in ascending live position guarantees each net is
        recomputed after all of its changed fanins, so every net is
        visited at most once.
        """
        lv = self._level_cache
        if lv is None:
            return
        pos = self._live_pos
        if pos is None:  # live order was dropped (cycle); rebuild lazily
            self._level_cache = None
            return
        fo = self._fanout_cache
        heap = [(pos[n], n) for n in seeds if n in pos]
        heapq.heapify(heap)
        done: Set[str] = set()
        while heap:
            _, n = heapq.heappop(heap)
            if n in done or n not in self._gates:
                continue
            done.add(n)
            g = self._gates[n]
            if g.is_source:
                new = 0
            else:
                new = 1 + max((lv[f] for f in g.fanins if f in lv), default=-1)
            if lv.get(n) != new:
                lv[n] = new
                for r in fo.get(n, ()):
                    if r not in done and r in pos:
                        heapq.heappush(heap, (pos[r], r))

    def depth(self) -> int:
        """Number of gate levels on the longest input-to-output path."""
        lv = self.levels()
        return max((lv[o] for o in self._outputs if o in lv), default=0)

    # ------------------------------------------------------------------ #
    # cones
    # ------------------------------------------------------------------ #

    def transitive_fanin(self, nets: Iterable[str]) -> Set[str]:
        """All nets (inclusive) in the transitive fanin of *nets*."""
        seen: Set[str] = set()
        stack = [n for n in nets]
        while stack:
            n = stack.pop()
            if n in seen or n not in self._gates:
                continue
            seen.add(n)
            stack.extend(self._gates[n].fanins)
        return seen

    def transitive_fanout(self, nets: Iterable[str]) -> Set[str]:
        """All nets (inclusive) in the transitive fanout of *nets*."""
        fo = self.fanout_map()
        seen: Set[str] = set()
        stack = [n for n in nets]
        while stack:
            n = stack.pop()
            if n in seen or n not in self._gates:
                continue
            seen.add(n)
            stack.extend(fo.get(n, ()))
        return seen

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def replace_gate(self, gate: Gate) -> None:
        """Replace the gate driving ``gate.name`` (net must exist)."""
        if gate.name not in self._gates:
            raise CircuitError(f"no net {gate.name!r} to replace")
        old = self._gates[gate.name]
        if gate.gtype is GateType.INPUT and old.gtype is not GateType.INPUT:
            raise CircuitError("cannot turn an internal net into a primary input")
        self._gates[gate.name] = gate
        if self._fanout_cache is not None:
            if gate.fanins != old.fanins:
                for f in old.fanins:
                    self._fo_del_pin(f, gate.name)
                for f in gate.fanins:
                    self._fo_add_pin(f, gate.name)
                self._live_driver_changed(gate.name, gate.fanins)
            self._repair_levels((gate.name,))
        self._note(CHANGE_DRIVER, gate.name)

    def remove_gate(self, net: str) -> None:
        """Remove the gate driving *net*.

        The net must have no readers and must not be a primary output; use
        :meth:`sweep` to remove dead logic wholesale.
        """
        if net not in self._gates:
            raise CircuitError(f"no net {net!r}")
        if self.fanouts(net):
            raise CircuitError(f"net {net!r} still has readers")
        if net in self._outputs:
            raise CircuitError(f"net {net!r} is a primary output")
        g = self._gates.pop(net)
        if g.gtype is GateType.INPUT:
            self._input_order.remove(net)
        fo = self._fanout_cache
        if fo is not None:
            for f in g.fanins:
                self._fo_del_pin(f, net)
            fo.pop(net, None)
            self._live_remove(net)
            if self._level_cache is not None:
                self._level_cache.pop(net, None)
        self._note(CHANGE_REMOVE, net)

    def rewire_fanin(self, net: str, old: str, new: str) -> None:
        """On the gate driving *net*, replace every fanin *old* with *new*."""
        g = self._gates[net]
        if old not in g.fanins:
            raise CircuitError(f"{net!r} has no fanin {old!r}")
        self._gates[net] = g.with_fanins(
            tuple(new if f == old else f for f in g.fanins)
        )
        if self._fanout_cache is not None:
            for f in g.fanins:
                if f == old:
                    self._fo_del_pin(old, net)
                    self._fo_add_pin(new, net)
            self._live_driver_changed(net, (new,))
            self._repair_levels((net,))
        self._note(CHANGE_DRIVER, net)

    def substitute_net(self, old: str, new: str) -> None:
        """Redirect every reader of *old* to *new*, preserving the interface.

        Primary-output net names are never rewritten: when *old* is a
        primary output (and not a primary input), its driver becomes
        ``BUF(new)`` so the output keeps its name and its new function.
        The old gate is otherwise left in place (possibly dead); call
        :meth:`sweep` to collect it.
        """
        if old == new:
            return
        # dict.fromkeys dedupes readers that touch *old* on several pins
        # (rewire_fanin replaces every pin of a reader at once).
        for reader in list(dict.fromkeys(self.fanouts(old))):
            self.rewire_fanin(reader, old, new)
        if old in self._outputs and self._gates[old].gtype is not GateType.INPUT:
            self.replace_gate(Gate(old, GateType.BUF, (new,)))

    def sweep(self) -> int:
        """Remove logic that cannot reach any primary output.

        Primary inputs are never removed (the interface is preserved, as the
        paper's procedures require: modified circuits keep the same I/O).
        Returns the number of gates removed.
        """
        live = self.transitive_fanin(self._outputs)
        dead = [
            n for n, g in self._gates.items()
            if n not in live and g.gtype is not GateType.INPUT
        ]
        deadset = set(dead)
        for net in dead:
            g = self._gates.pop(net)
            fo = self._fanout_cache
            if fo is not None:
                for f in g.fanins:
                    if f not in deadset:
                        self._fo_del_pin(f, net)
                fo.pop(net, None)
                self._live_remove(net)
                if self._level_cache is not None:
                    self._level_cache.pop(net, None)
            self._note(CHANGE_REMOVE, net)
        return len(dead)

    def fresh_net(self, prefix: str = "n") -> str:
        """Return a net name not yet used in the circuit.

        O(1) amortized: a monotonic per-prefix counter remembers where the
        last scan ended instead of rescanning from ``len(self._gates)``
        after removals.  The membership check below keeps it correct even
        when callers add colliding names by hand.
        """
        i = self._fresh_counters.get(prefix)
        if i is None:
            i = len(self._gates)
        while f"{prefix}{i}" in self._gates:
            i += 1
        self._fresh_counters[prefix] = i + 1
        return f"{prefix}{i}"

    # ------------------------------------------------------------------ #
    # validation / copying
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`CircuitError` on any structural inconsistency."""
        for name, g in self._gates.items():
            if name != g.name:
                raise CircuitError(f"key {name!r} != gate name {g.name!r}")
            if not arity_ok(g.gtype, len(g.fanins)):
                raise CircuitError(
                    f"gate {name!r}: bad arity {len(g.fanins)} for {g.gtype.value}"
                )
            for f in g.fanins:
                if f not in self._gates:
                    raise CircuitError(f"gate {name!r} reads undriven net {f!r}")
        for o in self._outputs:
            if o not in self._gates:
                raise CircuitError(f"primary output {o!r} is undriven")
        if not self._outputs:
            raise CircuitError("circuit has no primary outputs")
        self.topological_order()  # raises on cycles

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep-copy the circuit (gates are immutable, so sharing is safe).

        Subscribers are not carried over; the copy starts with fresh
        caches and inherits the fresh-net counters.
        """
        c = Circuit(name if name is not None else self.name)
        c._gates = dict(self._gates)
        c._outputs = list(self._outputs)
        c._input_order = list(self._input_order)
        c._fresh_counters = dict(self._fresh_counters)
        c._dirty()
        return c

    def structurally_equal(self, other: "Circuit") -> bool:
        """True when both circuits have identical gates, inputs and outputs."""
        return (
            self._gates == other._gates
            and self._outputs == other._outputs
            and self.inputs == other.inputs
        )
