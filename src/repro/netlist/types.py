"""Gate types and the :class:`Gate` record used by :class:`repro.netlist.Circuit`.

The netlist model follows the paper's conventions: a combinational circuit is a
DAG of single-output gates.  Each gate is identified by the name of its output
net.  Fanout branches are implicit (a net read by several gates has several
fanout branches); analyses that care about branches (path counting, checkpoint
fault collapsing) treat each reader of a stem as a distinct branch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class GateType(enum.Enum):
    """The primitive gate alphabet of the netlist model.

    ``INPUT`` marks a primary input; ``CONST0``/``CONST1`` are constant
    sources (arity 0).  All other types are combinational gates.
    """

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateType.{self.name}"


#: Gate types with no fanins.
SOURCE_TYPES = frozenset({GateType.INPUT, GateType.CONST0, GateType.CONST1})

#: Gate types that take exactly one fanin.
UNARY_TYPES = frozenset({GateType.BUF, GateType.NOT})

#: Gate types that take two or more fanins.
MULTI_INPUT_TYPES = frozenset(
    {
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    }
)

#: Gate types whose output inverts the "core" function (NAND/NOR/XNOR/NOT).
INVERTING_TYPES = frozenset(
    {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}
)

#: For AND-like and OR-like gates: the controlling input value.
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: For AND-like and OR-like gates: output value when a controlling input is present.
CONTROLLED_OUTPUT = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 1,
    GateType.NOR: 0,
}

#: Map each inverting type to its non-inverting core, and vice versa.
DUAL_POLARITY = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.BUF: GateType.NOT,
    GateType.NOT: GateType.BUF,
}


def arity_ok(gtype: GateType, n_fanins: int) -> bool:
    """Return True when a gate of type *gtype* may have *n_fanins* fanins."""
    if gtype in SOURCE_TYPES:
        return n_fanins == 0
    if gtype in UNARY_TYPES:
        return n_fanins == 1
    return n_fanins >= 2


@dataclass(frozen=True)
class Gate:
    """A single-output gate.

    Attributes
    ----------
    name:
        The output net name; unique within a circuit.
    gtype:
        The gate's :class:`GateType`.
    fanins:
        Ordered tuple of input net names.  Order is significant for analyses
        that index gate inputs (fault sites, path steps).
    """

    name: str
    gtype: GateType
    fanins: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.fanins, tuple):
            object.__setattr__(self, "fanins", tuple(self.fanins))
        if not arity_ok(self.gtype, len(self.fanins)):
            raise ValueError(
                f"gate {self.name!r}: type {self.gtype.value} cannot take "
                f"{len(self.fanins)} fanin(s)"
            )

    @property
    def is_source(self) -> bool:
        """True for primary inputs and constants."""
        return self.gtype in SOURCE_TYPES

    def with_fanins(self, fanins: Tuple[str, ...]) -> "Gate":
        """Return a copy of this gate with *fanins* substituted."""
        return Gate(self.name, self.gtype, tuple(fanins))

    def with_type(self, gtype: GateType) -> "Gate":
        """Return a copy of this gate with *gtype* substituted."""
        return Gate(self.name, gtype, self.fanins)


def eval_gate(gtype: GateType, values: Tuple[int, ...]) -> int:
    """Evaluate a gate of *gtype* on scalar 0/1 *values* (one per fanin).

    This is the reference single-pattern semantics; the bit-parallel simulator
    in :mod:`repro.sim` must agree with it (and tests check that it does).
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype is GateType.INPUT:
        raise ValueError("primary inputs have no evaluation rule")
    if gtype is GateType.BUF:
        return values[0]
    if gtype is GateType.NOT:
        return 1 - values[0]
    if gtype is GateType.AND:
        return int(all(values))
    if gtype is GateType.NAND:
        return 1 - int(all(values))
    if gtype is GateType.OR:
        return int(any(values))
    if gtype is GateType.NOR:
        return 1 - int(any(values))
    if gtype is GateType.XOR:
        return sum(values) & 1
    if gtype is GateType.XNOR:
        return 1 - (sum(values) & 1)
    raise ValueError(f"unknown gate type {gtype!r}")
