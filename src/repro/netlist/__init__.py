"""Gate-level netlist model: gates, circuits, transforms and size metrics."""

from .types import (
    Gate,
    GateType,
    CONTROLLED_OUTPUT,
    CONTROLLING_VALUE,
    DUAL_POLARITY,
    INVERTING_TYPES,
    MULTI_INPUT_TYPES,
    SOURCE_TYPES,
    UNARY_TYPES,
    arity_ok,
    eval_gate,
)
from .circuit import Circuit, CircuitError
from .build import CircuitBuilder, from_eqns
from .equivalence import (
    EquivalenceResult,
    EquivalenceStatus,
    build_miter,
    formally_equivalent,
    random_equivalent,
)
from .metrics import (
    CircuitStats,
    circuit_stats,
    gate_two_input_equivalents,
    literal_count,
    two_input_gate_count,
)
from .strash import structural_hash
from .transform import (
    decompose_two_input,
    collapse_buffers,
    propagate_constants,
    simplify,
    substitute_with_constant,
)

__all__ = [
    "Gate",
    "GateType",
    "Circuit",
    "CircuitError",
    "CircuitBuilder",
    "CircuitStats",
    "EquivalenceResult",
    "EquivalenceStatus",
    "CONTROLLED_OUTPUT",
    "CONTROLLING_VALUE",
    "DUAL_POLARITY",
    "INVERTING_TYPES",
    "MULTI_INPUT_TYPES",
    "SOURCE_TYPES",
    "UNARY_TYPES",
    "arity_ok",
    "build_miter",
    "circuit_stats",
    "collapse_buffers",
    "decompose_two_input",
    "eval_gate",
    "formally_equivalent",
    "from_eqns",
    "gate_two_input_equivalents",
    "literal_count",
    "propagate_constants",
    "random_equivalent",
    "simplify",
    "structural_hash",
    "substitute_with_constant",
    "two_input_gate_count",
]
