"""Convenience builders for constructing circuits in code.

:class:`CircuitBuilder` offers a compact fluent style used heavily in tests
and examples::

    b = CircuitBuilder("demo")
    a, x, y = b.inputs("a", "x", "y")
    g1 = b.AND(a, x)
    g2 = b.OR(g1, b.NOT(y))
    b.outputs(g2)
    circuit = b.build()

:func:`from_eqns` parses a tiny textual netlist format (one gate per line,
``out = TYPE(in1, in2, ...)``) used by fixtures.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from .circuit import Circuit, CircuitError
from .types import GateType


class CircuitBuilder:
    """Fluent helper that auto-names intermediate nets."""

    def __init__(self, name: str = "circuit") -> None:
        self._circuit = Circuit(name)
        self._counter = 0

    # -- interface -------------------------------------------------------

    def input(self, name: str) -> str:
        """Declare one primary input."""
        return self._circuit.add_input(name)

    def inputs(self, *names: str) -> List[str]:
        """Declare several primary inputs; returns their names."""
        return [self._circuit.add_input(n) for n in names]

    def outputs(self, *nets: str) -> None:
        """Mark *nets* as primary outputs (in order)."""
        for n in nets:
            self._circuit.add_output(n)

    def build(self) -> Circuit:
        """Validate and return the constructed circuit."""
        self._circuit.validate()
        return self._circuit

    # -- gates -----------------------------------------------------------

    def gate(self, gtype: GateType, fanins: Sequence[str], name: str = None) -> str:
        """Add a gate of *gtype*; auto-names the output net when needed."""
        if name is None:
            self._counter += 1
            name = f"g{self._counter}"
            while self._circuit.has_net(name):
                self._counter += 1
                name = f"g{self._counter}"
        return self._circuit.add_gate(name, gtype, fanins)

    def AND(self, *fanins: str, name: str = None) -> str:
        """Add an AND gate."""
        return self.gate(GateType.AND, fanins, name)

    def OR(self, *fanins: str, name: str = None) -> str:
        """Add an OR gate."""
        return self.gate(GateType.OR, fanins, name)

    def NAND(self, *fanins: str, name: str = None) -> str:
        """Add a NAND gate."""
        return self.gate(GateType.NAND, fanins, name)

    def NOR(self, *fanins: str, name: str = None) -> str:
        """Add a NOR gate."""
        return self.gate(GateType.NOR, fanins, name)

    def XOR(self, *fanins: str, name: str = None) -> str:
        """Add an XOR gate."""
        return self.gate(GateType.XOR, fanins, name)

    def XNOR(self, *fanins: str, name: str = None) -> str:
        """Add an XNOR gate."""
        return self.gate(GateType.XNOR, fanins, name)

    def NOT(self, fanin: str, name: str = None) -> str:
        """Add an inverter."""
        return self.gate(GateType.NOT, (fanin,), name)

    def BUF(self, fanin: str, name: str = None) -> str:
        """Add a buffer."""
        return self.gate(GateType.BUF, (fanin,), name)

    def CONST0(self, name: str = None) -> str:
        """Add a constant-0 source."""
        return self.gate(GateType.CONST0, (), name)

    def CONST1(self, name: str = None) -> str:
        """Add a constant-1 source."""
        return self.gate(GateType.CONST1, (), name)


_EQN_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]]+)\s*=\s*(?P<type>[A-Za-z01]+)\s*"
    r"\(\s*(?P<args>[^)]*)\)\s*$"
)

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def from_eqns(
    name: str,
    inputs: Sequence[str],
    eqns: Sequence[str],
    outputs: Sequence[str],
) -> Circuit:
    """Build a circuit from equation strings like ``"g1 = AND(a, b)"``."""
    c = Circuit(name)
    for pi in inputs:
        c.add_input(pi)
    for line in eqns:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _EQN_RE.match(line)
        if not m:
            raise CircuitError(f"cannot parse equation {line!r}")
        gtype = _TYPE_ALIASES.get(m.group("type").upper())
        if gtype is None:
            raise CircuitError(f"unknown gate type in {line!r}")
        args: Tuple[str, ...] = tuple(
            a.strip() for a in m.group("args").split(",") if a.strip()
        )
        c.add_gate(m.group("out"), gtype, args)
    c.set_outputs(list(outputs))
    c.validate()
    return c
