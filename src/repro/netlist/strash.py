"""Structural hashing (strash): merge structurally identical gates.

Two gates with the same type and the same fanins (as a multiset, for
commutative types) compute the same function; merging them removes
duplicate logic and tightens fanout sharing.  The pass iterates to a
fixpoint (merging can expose new duplicates) and, like every transform
here, preserves the circuit interface.  Used as an optional pre-pass by
the optimizers and as a cheap cleanup after unit emission.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .circuit import Circuit
from .types import GateType

_COMMUTATIVE = frozenset({
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR,
})


def _gate_key(circuit: Circuit, net: str) -> Tuple:
    gate = circuit.gate(net)
    fanins = gate.fanins
    if gate.gtype in _COMMUTATIVE:
        fanins = tuple(sorted(fanins))
    return (gate.gtype, fanins)


def structural_hash(circuit: Circuit) -> int:
    """Merge duplicate gates in place; returns the number merged.

    Deterministic: the earliest gate in topological order represents each
    equivalence class.  Primary-output nets always survive (a PO duplicate
    of an earlier gate keeps its name as a buffer, per
    :meth:`Circuit.substitute_net` semantics).
    """
    merged_total = 0
    while True:
        seen: Dict[Tuple, str] = {}
        merged = 0
        for net in circuit.topological_order():
            gate = circuit.gate(net)
            if gate.gtype in (GateType.INPUT,):
                continue
            key = _gate_key(circuit, net)
            keeper = seen.get(key)
            if keeper is None:
                seen[key] = net
                continue
            circuit.substitute_net(net, keeper)
            merged += 1
        circuit.sweep()
        merged_total += merged
        if merged == 0:
            return merged_total
