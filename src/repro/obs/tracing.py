"""Hierarchical tracing: nested spans with wall/CPU time, JSONL export.

A :class:`Tracer` produces nested :class:`Span`\\ s::

    tracer = Tracer(meta={"circuit": "syn35932"})
    with tracer.span("run", objective="gates") as run:
        with tracer.span("pass", pass_no=1) as p:
            ...
            p.set("replacements", 3)
    tracer.write_jsonl("run.trace.jsonl")

The span taxonomy the reproduction emits (run → pass → candidate →
extract/identify/replace; prime rounds under their pass) is documented
in ``docs/OBSERVABILITY.md``; ``repro-resynth trace FILE`` summarizes a
written trace.

**Deterministic-safe ids.**  Span ids are sequential integers in
creation order — no randomness, no timestamps — so two runs of the same
deterministic workload produce traces that differ only in the recorded
durations.  Tests diff everything but the times.

**The null tracer.**  Library code takes ``tracer=None`` and resolves it
through :func:`maybe_tracer` to :data:`null_tracer`, whose
:meth:`~NullTracer.span` returns one shared no-op span — no allocation,
no clock reads — so instrumented hot paths cost a method call when
tracing is off.  ``BENCH_resynth.json`` is regenerated with the null
tracer in place to pin that.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "NullTracer",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "maybe_tracer",
    "null_tracer",
    "read_trace",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: JSON-compatible attribute values (kept flat on purpose: a span
#: attribute is a fact about the span, not a document).
AttrValue = Union[str, int, float, bool, None]


class Span:
    """One timed region of a trace.

    Spans are created by :meth:`Tracer.span` and closed by leaving the
    ``with`` block; :meth:`set` attaches attributes at any point in
    between.  ``wall_s`` is monotonic wall clock, ``cpu_s`` is this
    process's CPU time over the same region (worker-subprocess CPU is
    not included — the parallel layer records dispatch latency
    histograms for that side).
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start_s",
                 "wall_s", "cpu_s", "attrs", "_t0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], start_s: float,
                 attrs: Dict[str, AttrValue]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self.attrs = attrs
        self._t0 = 0.0
        self._cpu0 = 0.0

    def set(self, key: str, value: AttrValue) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def annotate(self, **attrs: AttrValue) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.tracer._finish(self)

    def to_doc(self) -> Dict[str, object]:
        """The span's JSONL document."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "wall_s": round(self.wall_s, 6) if self.wall_s is not None
            else None,
            "cpu_s": round(self.cpu_s, 6) if self.cpu_s is not None
            else None,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects a tree of spans; one tracer per traced run.

    Thread-safe: each thread nests spans on its own stack (so the
    service's supervisor threads cannot corrupt each other's ancestry),
    while ids and the finished-span list are shared under a lock.  Spans
    are exported in id (creation) order, which for a single-threaded
    workload is exactly program order.
    """

    def __init__(self, meta: Optional[Dict[str, AttrValue]] = None) -> None:
        self.meta: Dict[str, AttrValue] = dict(meta or {})
        self.created = time.time()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._spans: List[Span] = []
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------- #

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: AttrValue) -> Span:
        """Open a nested span (use as a context manager)."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        now = time.perf_counter()
        span = Span(self, name, span_id, parent, now - self._t0, dict(attrs))
        span._t0 = now
        span._cpu0 = time.process_time()
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.wall_s = time.perf_counter() - span._t0
        span.cpu_s = time.process_time() - span._cpu0
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop it wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._spans.append(span)

    # -- views ---------------------------------------------------------- #

    @property
    def enabled(self) -> bool:
        """True — this tracer records spans (the null tracer says False)."""
        return True

    def spans(self) -> List[Span]:
        """Finished spans in id (creation) order."""
        with self._lock:
            return sorted(self._spans, key=lambda s: s.span_id)

    def find(self, name: str) -> List[Span]:
        """Finished spans named *name*, in creation order."""
        return [s for s in self.spans() if s.name == name]

    # -- export --------------------------------------------------------- #

    def header_doc(self) -> Dict[str, object]:
        """The trace's JSONL header line."""
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "created": self.created,
            "meta": self.meta,
        }

    def to_jsonl(self) -> str:
        """The whole trace as JSON lines (header first)."""
        lines = [json.dumps(self.header_doc(), sort_keys=True)]
        lines.extend(json.dumps(s.to_doc(), sort_keys=True)
                     for s in self.spans())
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> int:
        """Write the trace to *path*; returns the span count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(self._spans)


class _NullSpan:
    """The shared do-nothing span (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, key: str, value: AttrValue) -> None:
        pass

    def annotate(self, **attrs: AttrValue) -> None:
        pass


class NullTracer:
    """The no-op tracer installed when nobody asked for a trace.

    :meth:`span` returns one shared :class:`_NullSpan` — it never
    allocates and never reads a clock, so instrumentation guarded by the
    null tracer is a constant handful of attribute lookups.
    ``tests/obs/test_tracing.py`` pins the identity (zero-allocation)
    property.
    """

    __slots__ = ()

    _SPAN = _NullSpan()

    @property
    def enabled(self) -> bool:
        """False — spans are discarded."""
        return False

    def span(self, name: str, **attrs: AttrValue) -> _NullSpan:
        """The shared no-op span, whatever the arguments."""
        return self._SPAN

    def spans(self) -> List[Span]:
        """Always empty."""
        return []

    def find(self, name: str) -> List[Span]:
        """Always empty."""
        return []


#: Process-wide null tracer: the default everywhere a tracer is optional.
null_tracer = NullTracer()


def maybe_tracer(tracer) -> "Tracer":
    """*tracer* itself, or :data:`null_tracer` when None."""
    return tracer if tracer is not None else null_tracer


# --------------------------------------------------------------------- #
# reading traces back
# --------------------------------------------------------------------- #


def read_trace(lines_or_path: Union[str, Iterable[str]]
               ) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Parse and validate a JSONL trace; returns ``(header, spans)``.

    Accepts a filesystem path or an iterable of lines.  Raises
    ``ValueError`` on schema violations: a missing/foreign header, spans
    without the required keys, or a span whose ``parent`` does not
    reference an earlier span (ids are creation-ordered, so a parent
    always precedes its children).
    """
    if isinstance(lines_or_path, str):
        with open(lines_or_path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    else:
        lines = [ln.rstrip("\n") for ln in lines_or_path]
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"not a {TRACE_FORMAT} document")
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported {TRACE_FORMAT} version {header.get('version')!r}"
        )
    spans: List[Dict[str, object]] = []
    seen_ids = set()
    for i, line in enumerate(lines[1:], start=2):
        doc = json.loads(line)
        for key in ("span", "parent", "name", "start_s", "wall_s",
                    "cpu_s", "attrs"):
            if key not in doc:
                raise ValueError(f"line {i}: span missing {key!r}")
        if not isinstance(doc["span"], int) or doc["span"] < 1:
            raise ValueError(f"line {i}: bad span id {doc['span']!r}")
        if doc["span"] in seen_ids:
            raise ValueError(f"line {i}: duplicate span id {doc['span']}")
        parent = doc["parent"]
        if parent is not None and parent not in seen_ids:
            raise ValueError(
                f"line {i}: span {doc['span']} references unknown parent "
                f"{parent!r}"
            )
        seen_ids.add(doc["span"])
        spans.append(doc)
    return header, spans
