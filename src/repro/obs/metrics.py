"""The unified metrics model: counters, gauges, histograms, one registry.

Every layer of the reproduction — the resynthesis sweep, the parallel
evaluation pool, the job service, the analysis caches — reports through
the same three instrument types held in one :class:`Registry`:

* :class:`Counter` — a monotonically increasing total (accepted
  candidates, cache hits, HTTP requests);
* :class:`Gauge` — a set-to-current value (queue depth, heartbeat age);
* :class:`Histogram` — bucketed observations with ``count``/``sum`` and
  ``min``/``max`` (pass durations, queue wait, dispatch latency).

A registry is either *injected* (passed down a call chain, as the job
service does) or the *process-wide default* returned by
:func:`get_registry` (what the resynthesis procedures fall back to), so
library code never needs a ``metrics=None`` special case.  Everything is
thread-safe: the service's HTTP handler threads, scheduler thread and
supervisor threads write concurrently.

Two export surfaces, one data model: :meth:`Registry.snapshot` keeps the
JSON shape the service's ``/metrics`` endpoint has always served
(``counters`` / ``gauges`` / ``summaries``), and
:func:`repro.obs.prometheus.render` produces Prometheus text exposition
from the same instruments.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "set_registry",
]

#: Default histogram bucket upper bounds (seconds-flavoured, spanning
#: sub-millisecond dispatch latencies to minute-scale passes).  ``+Inf``
#: is implicit — every histogram has a final catch-all bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, value: float = 1.0) -> None:
        """Add *value* (>= 0)."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value


class Gauge:
    """A value that is set to the current level (may go up or down)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        """The current level (None when never set)."""
        with self._lock:
            return self._value


class Histogram:
    """Bucketed observations with running count/sum/min/max.

    Buckets are cumulative upper bounds in the Prometheus style: bucket
    ``i`` counts observations ``<= bounds[i]``, and an implicit ``+Inf``
    bucket counts everything.  ``min``/``max`` ride along so the legacy
    summary snapshot keeps its shape without a second instrument type.
    """

    __slots__ = ("name", "help", "bounds", "_bucket_counts", "_count",
                 "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help = help
        bounds = tuple(sorted(buckets if buckets is not None
                              else DEFAULT_BUCKETS))
        if any(b != b or b in (float("inf"), float("-inf"))
               for b in bounds):
            raise ValueError("finite bucket bounds only (+Inf is implicit)")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            i = 0
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    break
            else:
                i = len(self.bounds)
            self._bucket_counts[i] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of observations."""
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(upper_bound, count)`` rows.

        The final row's bound is ``+Inf`` and its count equals
        :attr:`count`.
        """
        with self._lock:
            rows: List[Tuple[float, int]] = []
            running = 0
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                rows.append((bound, running))
            rows.append((float("inf"), self._count))
            return rows

    def summary(self) -> Dict[str, float]:
        """The legacy ``count/sum/min/max`` summary view."""
        with self._lock:
            if self._count == 0:
                return {"count": 0.0, "sum": 0.0}
            return {
                "count": float(self._count),
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class Registry:
    """Thread-safe home of every metric, injected or process-wide.

    The typed surface (:meth:`get_counter` / :meth:`get_gauge` /
    :meth:`get_histogram`) hands out live instruments for hot paths that
    want to hold a reference; the name-keyed conveniences (:meth:`inc` /
    :meth:`set_gauge` / :meth:`observe`) serve call sites that touch a
    metric once.  Both resolve to the same instrument, and registering
    the same name with two different types raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- typed accessors ------------------------------------------------ #

    def _check_free(self, name: str, among: tuple) -> None:
        for table, kind in among:
            if name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a {kind}"
                )

    def get_counter(self, name: str, help: str = "") -> Counter:
        """The counter *name*, created on first use."""
        with self._lock:
            got = self._counters.get(name)
            if got is None:
                self._check_free(name, ((self._gauges, "gauge"),
                                        (self._histograms, "histogram")))
                got = self._counters[name] = Counter(name, help)
            return got

    def get_gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge *name*, created on first use."""
        with self._lock:
            got = self._gauges.get(name)
            if got is None:
                self._check_free(name, ((self._counters, "counter"),
                                        (self._histograms, "histogram")))
                got = self._gauges[name] = Gauge(name, help)
            return got

    def get_histogram(self, name: str, help: str = "",
                      buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram *name*, created on first use."""
        with self._lock:
            got = self._histograms.get(name)
            if got is None:
                self._check_free(name, ((self._counters, "counter"),
                                        (self._gauges, "gauge")))
                got = self._histograms[name] = Histogram(name, help, buckets)
            return got

    # -- name-keyed conveniences for one-shot call sites ---------------- #

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* (>= 0) to the counter *name*."""
        self.get_counter(name).inc(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value*."""
        self.get_gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram *name*."""
        self.get_histogram(name).observe(value)

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            got = self._counters.get(name)
        return got.value if got is not None else 0.0

    def gauge_value(self, name: str) -> Optional[float]:
        """Current value of a gauge (None when never set)."""
        with self._lock:
            got = self._gauges.get(name)
        return got.value if got is not None else None

    # -- export --------------------------------------------------------- #

    def instruments(self) -> Tuple[List[Counter], List[Gauge],
                                   List[Histogram]]:
        """Name-sorted live instruments (the Prometheus renderer's view)."""
        with self._lock:
            return (
                [self._counters[k] for k in sorted(self._counters)],
                [self._gauges[k] for k in sorted(self._gauges)],
                [self._histograms[k] for k in sorted(self._histograms)],
            )

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time copy of every metric, JSON-serializable.

        Histograms appear under ``summaries`` with their legacy
        ``count/sum/min/max`` shape — the JSON ``/metrics`` document is
        unchanged from the pre-``repro.obs`` service.
        """
        counters, gauges, histograms = self.instruments()
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges
                       if g.value is not None},
            "summaries": {h.name: h.summary() for h in histograms},
        }


_default_registry = Registry()
_default_lock = threading.Lock()


def get_registry() -> Registry:
    """The process-wide default registry (library code's fallback)."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Replace the process-wide default; returns the previous one.

    Tests use this to isolate the global surface; services should prefer
    injecting their own registry over swapping the default.
    """
    global _default_registry
    if not isinstance(registry, Registry):
        raise TypeError("set_registry needs a repro.obs.Registry")
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
