"""Unified observability layer (``repro.obs``): tracing + metrics.

One public instrumentation surface for every layer of the
reproduction::

    from repro.obs import Registry, Tracer, null_tracer

* **Metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  live in a :class:`Registry`, either injected down a call chain (the
  job service does this) or the process-wide default from
  :func:`get_registry`.  :func:`render_prometheus` produces Prometheus
  text exposition (served at ``GET /metrics``); :meth:`Registry.snapshot`
  keeps the service's historical JSON shape.
* **Tracing** — a :class:`Tracer` records nested :class:`Span`\\ s with
  wall/CPU time, attributes and deterministic sequential ids, exported
  as JSONL (:meth:`Tracer.write_jsonl`, parsed back by
  :func:`read_trace`) and summarized by ``repro-resynth trace FILE``
  (:func:`render_trace_summary`).  When no tracer is installed, the
  shared :data:`null_tracer` makes every instrumented site a no-op.

The legacy stats surfaces —
:class:`repro.parallel.PassPrimeStats` accounting and the
:class:`repro.sim.TruthTableCache` hit/miss counters — now feed (or
alias) this layer; ``docs/OBSERVABILITY.md`` documents the span
taxonomy and metric naming conventions.
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    set_registry,
)
from .prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .prometheus import render as render_prometheus
from .tracesummary import render_trace_summary, summarize_trace
from .tracing import (
    NullTracer,
    Span,
    TRACE_FORMAT,
    TRACE_VERSION,
    Tracer,
    maybe_tracer,
    null_tracer,
    read_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "NullTracer",
    "PROMETHEUS_CONTENT_TYPE",
    "Registry",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "get_registry",
    "maybe_tracer",
    "null_tracer",
    "read_trace",
    "render_prometheus",
    "render_trace_summary",
    "set_registry",
    "summarize_trace",
]
