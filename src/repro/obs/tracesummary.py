"""Trace summarization: what ``repro-resynth trace FILE`` prints.

Reads a JSONL trace written by :class:`~repro.obs.Tracer`, validates it
via :func:`~repro.obs.read_trace`, and renders three views:

* **per-stage totals** — wall/CPU time and span counts aggregated by
  span name, with each stage's share of the root span's wall clock;
* **per-pass breakdown** — one row per ``pass`` span with its wall
  time, replacements and truth-table-cache hit columns (the attributes
  the resynthesis sweep attaches);
* **top spans** — the individual spans that cost the most wall time.

``docs/OBSERVABILITY.md`` walks through reading a real ``syn35932``
trace with these tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .tracing import read_trace

__all__ = ["render_trace_summary", "summarize_trace"]


def summarize_trace(path: str) -> Dict[str, object]:
    """Structured summary of the trace at *path*.

    Returns a dict with ``header``, ``stages`` (name-keyed totals),
    ``passes`` (pass-span rows) and ``spans`` (all span docs).
    """
    header, spans = read_trace(path)
    stages: Dict[str, Dict[str, float]] = {}
    for doc in spans:
        row = stages.setdefault(doc["name"], {
            "count": 0, "wall_s": 0.0, "cpu_s": 0.0,
        })
        row["count"] += 1
        row["wall_s"] += doc["wall_s"] or 0.0
        row["cpu_s"] += doc["cpu_s"] or 0.0

    passes: List[Dict[str, object]] = []
    for doc in spans:
        if doc["name"] != "pass":
            continue
        attrs = doc.get("attrs") or {}
        hits = attrs.get("tt_hits")
        misses = attrs.get("tt_misses")
        rate: Optional[float] = None
        if isinstance(hits, (int, float)) and isinstance(misses,
                                                         (int, float)):
            total = hits + misses
            rate = (hits / total) if total else None
        passes.append({
            "pass_no": attrs.get("pass_no"),
            "wall_s": doc["wall_s"],
            "replacements": attrs.get("replacements"),
            "tt_hits": hits,
            "tt_misses": misses,
            "tt_hit_rate": rate,
        })
    passes.sort(key=lambda row: (row["pass_no"] is None, row["pass_no"]))
    return {
        "header": header,
        "stages": stages,
        "passes": passes,
        "spans": spans,
    }


def _root_wall(spans: List[Dict[str, object]]) -> float:
    roots = [d["wall_s"] or 0.0 for d in spans if d["parent"] is None]
    return sum(roots)


def _fmt(value, width: int, decimals: int = 3) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.{decimals}f}".rjust(width)
    return str(value).rjust(width)


def render_trace_summary(path: str, top: int = 10) -> str:
    """Human-readable summary of the trace at *path*."""
    summary = summarize_trace(path)
    header = summary["header"]
    spans: List[Dict[str, object]] = summary["spans"]
    stages: Dict[str, Dict[str, float]] = summary["stages"]
    out: List[str] = []

    meta = header.get("meta") or {}
    meta_str = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    out.append(f"trace: {path}")
    out.append(f"{len(spans)} spans"
               + (f"  [{meta_str}]" if meta_str else ""))
    root_wall = _root_wall(spans)

    out.append("")
    out.append("per-stage totals:")
    out.append(f"  {'stage':<12} {'count':>7} {'wall_s':>10} "
               f"{'cpu_s':>10} {'share':>7}")
    for name in sorted(stages, key=lambda n: -stages[n]["wall_s"]):
        row = stages[name]
        share = (row["wall_s"] / root_wall) if root_wall else 0.0
        out.append(
            f"  {name:<12} {row['count']:>7} "
            f"{_fmt(row['wall_s'], 10)} {_fmt(row['cpu_s'], 10)} "
            f"{share:>6.1%}"
        )

    passes: List[Dict[str, object]] = summary["passes"]
    if passes:
        out.append("")
        out.append("per-pass breakdown:")
        out.append(f"  {'pass':>4} {'wall_s':>10} {'repl':>6} "
                   f"{'tt_hits':>9} {'tt_miss':>9} {'hit%':>6}")
        for row in passes:
            rate = row["tt_hit_rate"]
            out.append(
                f"  {_fmt(row['pass_no'], 4)} {_fmt(row['wall_s'], 10)} "
                f"{_fmt(row['replacements'], 6)} "
                f"{_fmt(row['tt_hits'], 9)} {_fmt(row['tt_misses'], 9)} "
                f"{(f'{rate:.1%}' if rate is not None else '-'):>6}"
            )

    if top > 0 and spans:
        ranked = sorted(spans, key=lambda d: -(d["wall_s"] or 0.0))[:top]
        out.append("")
        out.append(f"top {len(ranked)} spans by wall time:")
        out.append(f"  {'wall_s':>10} {'span':>6}  name / attrs")
        for doc in ranked:
            attrs = doc.get("attrs") or {}
            attr_str = " ".join(
                f"{k}={v}" for k, v in sorted(attrs.items())
            )
            out.append(
                f"  {_fmt(doc['wall_s'], 10)} {doc['span']:>6}  "
                f"{doc['name']}" + (f"  {attr_str}" if attr_str else "")
            )
    return "\n".join(out) + "\n"
