"""Prometheus text exposition (format 0.0.4) for :class:`~repro.obs.Registry`.

:func:`render` turns a registry's live instruments into the plain-text
format Prometheus scrapes, served by the job service at ``GET /metrics``
when the ``Accept`` header asks for ``text/plain`` (the JSON snapshot
remains the default; see :mod:`repro.service.api`).

Conventions applied here, pinned by ``tests/obs/test_prometheus.py``:

* counter sample names carry the ``_total`` suffix (added when the
  registry name does not already end in it), and their ``# TYPE`` line
  names the metric *without* the suffix, per the OpenMetrics convention;
* histograms expose cumulative ``<name>_bucket{le="..."}`` samples with
  a final ``le="+Inf"`` bucket, plus ``<name>_sum`` and ``<name>_count``;
* metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* ``# HELP`` text escapes backslashes and newlines; label values escape
  backslashes, double quotes and newlines.
"""

from __future__ import annotations

import math
import re
from typing import List

from .metrics import Registry

__all__ = ["CONTENT_TYPE", "render"]

#: The content type Prometheus' text parser expects.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Coerce *name* into a legal Prometheus metric name."""
    if _NAME_OK.match(name):
        return name
    name = _NAME_BAD_CHARS.sub("_", name)
    if not name or not re.match(r"[a-zA-Z_:]", name[0]):
        name = "_" + name
    return name


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line's text."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value (used for ``le`` and any future labels)."""
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def format_value(value: float) -> str:
    """Render a sample value (``+Inf``/``-Inf``/``NaN`` spelled out)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def _bound_label(bound: float) -> str:
    """The ``le`` label for a bucket bound (``+Inf`` for the last)."""
    if math.isinf(bound):
        return "+Inf"
    # Integral bounds render without a trailing .0 ambiguity either way;
    # repr keeps 0.005 exact instead of accumulating format noise.
    return repr(bound)


def render(registry: Registry) -> str:
    """The whole registry as Prometheus text exposition."""
    counters, gauges, histograms = registry.instruments()
    out: List[str] = []

    for c in counters:
        name = sanitize_name(c.name)
        base = name[:-len("_total")] if name.endswith("_total") else name
        if c.help:
            out.append(f"# HELP {base} {escape_help(c.help)}")
        out.append(f"# TYPE {base} counter")
        out.append(f"{base}_total {format_value(c.value)}")

    for g in gauges:
        if g.value is None:
            continue
        name = sanitize_name(g.name)
        if g.help:
            out.append(f"# HELP {name} {escape_help(g.help)}")
        out.append(f"# TYPE {name} gauge")
        out.append(f"{name} {format_value(g.value)}")

    for h in histograms:
        name = sanitize_name(h.name)
        if h.help:
            out.append(f"# HELP {name} {escape_help(h.help)}")
        out.append(f"# TYPE {name} histogram")
        for bound, count in h.cumulative_buckets():
            le = escape_label_value(_bound_label(bound))
            out.append(f'{name}_bucket{{le="{le}"}} {count}')
        out.append(f"{name}_sum {format_value(h.sum)}")
        out.append(f"{name}_count {h.count}")

    return "\n".join(out) + "\n" if out else ""
