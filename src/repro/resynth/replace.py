"""Cone evaluation: can a candidate subcircuit be replaced, and at what cost?

For each candidate cone the evaluator extracts the subfunction (exhaustive
truth table over the cone inputs), identifies comparison-function
realizations (ON-set or OFF-set, per Section 5), picks the cheapest unit,
and prices the replacement:

* ``gate_gain`` — removable gates (cone members that do not fan out to
  logic outside the cone; shared members are excluded exactly as Section
  4.1 prescribes) minus the unit's equivalent-2-input gate count;
* ``paths_on_output`` — ``sum N_p(i) * K_p(i)`` over the cone inputs,
  where ``N_p`` are the Procedure 1 labels of the host circuit and ``K_p``
  the unit's internal path counts.

Constant subfunctions are priced as a constant-gate substitution (the unit
degenerates; local constant folding is always sound here because the truth
table is exact over the cone's inputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis import Cone, removable_members
from ..comparison import (
    ComparisonSpec,
    best_spec,
    emit_comparison_unit,
    exact_identify,
    identify_comparison,
)
from ..netlist import (
    Circuit,
    Gate,
    GateType,
    gate_two_input_equivalents,
)
from ..sim import TruthTableCache, cone_signature, signature_truth_table

#: Realizations collected per cone before picking the cheapest.  Shared
#: with the parallel evaluation layer so worker-computed identifications
#: carry the exact knobs the serial sweep would have used.
DEFAULT_MAX_SPECS = 6


@dataclass(frozen=True)
class ReplacementOption:
    """A priced replacement of a cone by a comparison unit (or constant)."""

    cone: Cone
    spec: Optional[ComparisonSpec]  # None for a constant substitution
    constant_value: Optional[int]
    removable_gates: int  # the paper's N
    unit_gates: int  # the paper's N'
    paths_on_output: int

    @property
    def gate_gain(self) -> int:
        """The paper's ``N - N'`` (positive = circuit shrinks)."""
        return self.removable_gates - self.unit_gates

    @property
    def is_constant(self) -> bool:
        """True when the cone's function is constant over its inputs."""
        return self.spec is None


def evaluate_cone(
    circuit: Circuit,
    cone: Cone,
    labels: Dict[str, int],
    perm_budget: int = 200,
    seed: int = 0,
    max_specs: int = DEFAULT_MAX_SPECS,
    exact: bool = False,
    tt_cache: Optional[TruthTableCache] = None,
    memo=None,
) -> Optional[ReplacementOption]:
    """Price the best comparison-unit replacement for *cone* (None if none).

    *labels* are the host circuit's Procedure 1 path labels.  With
    ``exact=True`` the sampled identification is augmented by the exact
    decision procedure of :mod:`repro.comparison.exact`, which never
    misses a realization (the sampler's 200-permutation budget does, for
    6+ inputs).  *tt_cache* memoizes cone truth tables by structural
    signature, so re-enumerated cones skip resimulation.  Both the truth
    table and the identification are obtained through pure-function caches
    (:class:`~repro.sim.TruthTableCache` and the global
    :class:`~repro.comparison.IdentificationCache`), which is what lets
    :mod:`repro.parallel` precompute them in worker processes without any
    observable difference in the result.  *memo* is the optional
    persistent identification store (:class:`repro.memo.MemoStore`)
    consulted behind the in-process cache — same purity argument, same
    bit-identical results.
    """
    removable = removable_members(circuit, cone)
    n_removable = sum(
        gate_two_input_equivalents(circuit.gate(m)) for m in removable
    )
    if not cone.inputs:
        key = cone_signature(circuit, cone.output, cone.members, ())
        value = signature_truth_table(key, 0) & 1
        return ReplacementOption(cone, None, value, n_removable, 0, 0)
    key = cone_signature(circuit, cone.output, cone.members, cone.inputs)
    tt = tt_cache.get(key) if tt_cache is not None else None
    if tt is None:
        tt = signature_truth_table(key, len(cone.inputs))
        if tt_cache is not None:
            tt_cache.put(key, tt)
    size = 1 << len(cone.inputs)
    if tt == 0 or tt == (1 << size) - 1:
        value = 1 if tt else 0
        return ReplacementOption(cone, None, value, n_removable, 0, 0)
    found = identify_comparison(
        tt, cone.inputs, perm_budget=perm_budget, seed=seed,
        max_specs=max_specs, memo=memo,
    )
    specs = list(found.specs)
    if exact and not specs:
        witness = exact_identify(tt, cone.inputs)
        if witness is not None:
            specs.append(witness)
    if not specs:
        return None
    spec, cost = best_spec(specs)
    paths = sum(
        labels[i] * cost.paths_per_input[i] for i in cone.inputs
    )
    return ReplacementOption(
        cone, spec, None, n_removable, cost.two_input_gates, paths
    )


def current_paths_on(circuit: Circuit, net: str, labels: Dict[str, int]) -> int:
    """``N_p(net)`` under the current structure (sum of fanin labels)."""
    gate = circuit.gate(net)
    if gate.gtype is GateType.INPUT:
        return labels[net]
    return sum(labels[f] for f in gate.fanins)


def apply_replacement(
    circuit: Circuit, option: ReplacementOption, prefix: str = "cu_"
) -> List[str]:
    """Emit the chosen replacement into *circuit*; returns created nets.

    The cone output keeps its net name; orphaned members are swept.
    Shared members survive automatically (they still have readers).
    """
    out = option.cone.output
    if option.is_constant:
        gtype = GateType.CONST1 if option.constant_value else GateType.CONST0
        circuit.replace_gate(Gate(out, gtype))
        created: List[str] = []
    else:
        created = emit_comparison_unit(
            circuit, option.spec, out, prefix=prefix
        )
    circuit.sweep()
    return [n for n in created if circuit.has_net(n)]
