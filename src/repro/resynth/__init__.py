"""Resynthesis with comparison units: Procedures 2 and 3 and Section 4.3."""

from .candidates import DEFAULT_MAX_CANDIDATES, enumerate_candidate_cones
from .procedures import (
    PassCheckpoint,
    REPORT_NUMBER_FIELDS,
    ResumeMismatchError,
    ResynthesisReport,
    combined_procedure,
    procedure2,
    procedure3,
)
from .replace import (
    ReplacementOption,
    apply_replacement,
    current_paths_on,
    evaluate_cone,
)
from .serialize import (
    checkpoint_from_json,
    checkpoint_to_json,
    report_from_json,
    report_to_json,
)

__all__ = [
    "DEFAULT_MAX_CANDIDATES",
    "PassCheckpoint",
    "REPORT_NUMBER_FIELDS",
    "ReplacementOption",
    "ResumeMismatchError",
    "ResynthesisReport",
    "apply_replacement",
    "checkpoint_from_json",
    "checkpoint_to_json",
    "combined_procedure",
    "current_paths_on",
    "enumerate_candidate_cones",
    "evaluate_cone",
    "procedure2",
    "procedure3",
    "report_from_json",
    "report_to_json",
]
