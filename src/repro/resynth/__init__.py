"""Resynthesis with comparison units: Procedures 2 and 3 and Section 4.3."""

from .candidates import DEFAULT_MAX_CANDIDATES, enumerate_candidate_cones
from .procedures import (
    ResynthesisReport,
    combined_procedure,
    procedure2,
    procedure3,
)
from .replace import (
    ReplacementOption,
    apply_replacement,
    current_paths_on,
    evaluate_cone,
)

__all__ = [
    "DEFAULT_MAX_CANDIDATES",
    "ReplacementOption",
    "ResynthesisReport",
    "apply_replacement",
    "combined_procedure",
    "current_paths_on",
    "enumerate_candidate_cones",
    "evaluate_cone",
    "procedure2",
    "procedure3",
]
