"""Procedures 2 and 3 (Section 4) and the combined measure (Section 4.3).

Both procedures sweep the circuit from primary outputs toward primary
inputs.  Marked gate-outputs get a candidate-subcircuit enumeration (up to
``K`` inputs); candidates realizing comparison functions are priced and the
best replacement is applied:

* **Procedure 2** maximizes the gate reduction ``N - N'`` with the number
  of paths on the line as the tiebreak; a replacement is applied when it
  strictly improves ``(gates, paths)`` lexicographically, so the gate count
  never increases.
* **Procedure 3** minimizes the number of paths on the line, accepting
  gate-count increases (as Table 5 shows the paper does).
* **The combined measure** (Section 4.3) maximizes
  ``gate_weight * (N - N') + (paths_now - paths_after)``, exposing the
  in-between points of the solution space.

Each procedure repeats whole passes until a pass makes no change (the
paper: "applied repeatedly until no more improvements are possible").

With ``jobs > 1`` the expensive per-candidate work of each pass — truth
tables and comparison-function identification — is fanned out over a
process pool before the sweep runs (:mod:`repro.parallel`), while every
replacement decision and commit stays in this module, in serial order,
against the :class:`~repro.analysis.AnalysisSession`'s current labels.
Reports are bit-identical at any ``jobs`` value; see ``docs/PARALLEL.md``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..analysis import AnalysisSession
from ..netlist import (
    Circuit,
    GateType,
    decompose_two_input,
    two_input_gate_count,
)
from ..obs import Registry, get_registry, maybe_tracer, null_tracer
from ..sim import outputs_equal, random_words
from .candidates import enumerate_candidate_cones
from .replace import (
    DEFAULT_MAX_SPECS,
    ReplacementOption,
    apply_replacement,
    current_paths_on,
    evaluate_cone,
)


@dataclass
class ResynthesisReport:
    """Result of running a resynthesis procedure.

    All fields except the wall-clock ``timings`` mapping are
    deterministic: bit-identical at any ``jobs`` value and across
    checkpoint/resume (see docs/PARALLEL.md and docs/SERVICE.md).
    Determinism comparisons must therefore use
    :data:`REPORT_NUMBER_FIELDS`, never the timing fields.

    ``timings`` is the structured wall-clock account of the run.  Always
    present: ``pass_seconds`` (list, one entry per pass, resumed passes
    included) and ``total_seconds`` (whole-run wall clock).  Runs add
    stage keys as they apply: ``setup_seconds`` (decompose + initial
    path labels of this process's portion), ``verify_seconds`` (per-pass
    inline verification, when ``verify_patterns`` is on) and
    ``prime_seconds`` (per-pass parallel cache priming, when
    ``jobs > 1``).  The historical ``pass_seconds``/``total_seconds``
    attributes remain as derived read-only properties.
    """

    circuit: Circuit
    objective: str
    k: int
    passes: int
    replacements: int
    gates_before: int
    gates_after: int
    paths_before: int
    paths_after: int
    mutations: int = 0  # circuit mutation events observed during the run
    jobs: int = 1  # worker processes used for candidate evaluation
    timings: Dict[str, object] = field(default_factory=dict)

    @property
    def pass_seconds(self) -> List[float]:
        """Wall clock of each pass (derived from ``timings``)."""
        return self.timings.get("pass_seconds", [])

    @property
    def total_seconds(self) -> float:
        """Whole-run wall clock, resumes included (from ``timings``)."""
        return float(self.timings.get("total_seconds", 0.0))

    @property
    def gate_reduction(self) -> int:
        """Equivalent-2-input gates removed."""
        return self.gates_before - self.gates_after

    @property
    def path_reduction(self) -> int:
        """Paths removed."""
        return self.paths_before - self.paths_after

    def summary(self) -> str:
        """One-line report string."""
        return (
            f"{self.circuit.name}: {self.objective} K={self.k} "
            f"gates {self.gates_before}->{self.gates_after} "
            f"paths {self.paths_before}->{self.paths_after} "
            f"({self.replacements} replacements, {self.passes} passes)"
        )

    def timing_summary(self) -> str:
        """One-line wall-clock breakdown by pass."""
        per_pass = ", ".join(f"{s:.2f}s" for s in self.pass_seconds)
        return (
            f"timing: {self.total_seconds:.2f}s total, "
            f"passes [{per_pass}]"
        )


#: Deterministic report fields: equal across ``jobs`` values and across
#: checkpoint/resume.  Oracles and benchmarks compare exactly these.
REPORT_NUMBER_FIELDS = (
    "objective", "k", "passes", "replacements", "gates_before",
    "gates_after", "paths_before", "paths_after", "mutations",
)


@dataclass
class PassCheckpoint:
    """Cross-pass sweep state at a pass boundary.

    Captures everything :func:`_run` carries from one pass to the next,
    so a run resumed from a checkpoint produces a report and a result
    netlist bit-identical to the uninterrupted run (the ``resume``
    differential oracle in :mod:`repro.verify.oracles` fuzzes exactly
    that contract; docs/SERVICE.md documents it).

    No RNG state needs snapshotting: every random stream of the sweep —
    identification permutation sampling and the inline verification
    patterns — is freshly derived from ``(seed, pass_no)`` at each pass,
    so the seed and the pass counter *are* the RNG state.  The circuit
    copy carries its fresh-net counters, and in-sweep net naming
    (:class:`repro.comparison.unit._Namer`) probes current net membership
    only, so serialized round-trips of the checkpoint stay faithful.
    """

    objective: str
    k: int
    seed: int
    pass_no: int  # passes completed so far (1-based)
    circuit: Circuit  # working circuit after pass ``pass_no`` (a copy)
    replacements: int  # cumulative replacements over all passes so far
    mutations: int  # cumulative circuit mutation events
    gates_before: int  # of the decomposed start circuit
    paths_before: int
    gates_now: int
    paths_now: int
    pass_seconds: List[float]  # wall clock of every completed pass
    done: bool  # the sweep converged (or hit max_passes) at this pass


#: Progress hook: called at every pass boundary with a fresh checkpoint.
PassHook = Callable[[PassCheckpoint], None]


class ResumeMismatchError(ValueError):
    """A checkpoint was replayed against incompatible run parameters."""


# A selector maps (options, current_paths) -> chosen option or None.
Selector = Callable[[List[ReplacementOption], int], Optional[ReplacementOption]]


def _select_for_gates(
    options: List[ReplacementOption], current_paths: int
) -> Optional[ReplacementOption]:
    """Procedure 2 selection: max gate gain, then min paths on the line."""
    if not options:
        return None
    best = min(
        options,
        key=lambda o: (-o.gate_gain, o.paths_on_output, o.cone.n_gates),
    )
    if best.gate_gain > 0:
        return best
    if best.gate_gain == 0 and best.paths_on_output < current_paths:
        return best
    return None


def _select_for_paths(
    options: List[ReplacementOption], current_paths: int
) -> Optional[ReplacementOption]:
    """Procedure 3 selection: min paths on the line (gates unconstrained)."""
    if not options:
        return None
    best = min(
        options,
        key=lambda o: (o.paths_on_output, -o.gate_gain, o.cone.n_gates),
    )
    if best.paths_on_output < current_paths:
        return best
    return None


def _make_combined_selector(gate_weight: float) -> Selector:
    """Section 4.3's combined measure selector."""

    def select(
        options: List[ReplacementOption], current_paths: int
    ) -> Optional[ReplacementOption]:
        if not options:
            return None

        def measure(o: ReplacementOption) -> float:
            return gate_weight * o.gate_gain + (
                current_paths - o.paths_on_output
            )

        best = max(options, key=lambda o: (measure(o), o.gate_gain))
        if measure(best) > 0:
            return best
        return None

    return select


def _resynthesis_pass(
    work: Circuit,
    selector: Selector,
    k: int,
    perm_budget: int,
    seed: int,
    exact: bool = False,
    session: Optional[AnalysisSession] = None,
    evaluator: Optional["ParallelEvaluator"] = None,
    tracer=null_tracer,
    registry: Optional[Registry] = None,
) -> int:
    """One outputs-to-inputs sweep; returns the number of replacements.

    Every selection site is priced against the session's *current* path
    labels (maintained incrementally across replacements), not against a
    pass-start snapshot — earlier replacements in the same pass are
    reflected immediately.

    When an *evaluator* is given, the pass-start candidate cones are
    evaluated by its worker pool first (:mod:`repro.parallel`); the sweep
    below then mostly hits the warmed caches.  Cones that only come into
    existence mid-pass miss the caches and are evaluated inline, exactly
    as in a serial run, so the selected replacements are identical.

    *tracer* emits one ``candidate`` span per selection site with
    ``extract`` / ``identify`` / ``replace`` children; *registry*
    receives the accepted/rejected counters and the gate/path-delta
    histograms.  Neither can influence a decision — with the default
    null tracer the instrumentation is a no-op.
    """
    own_session = session is None
    if own_session:
        session = AnalysisSession(work)
    memo = session.memo
    if registry is None:
        registry = get_registry()
    accepted = registry.get_counter(
        "resynth_candidates_accepted_total",
        "selection sites where a replacement was applied")
    rejected = registry.get_counter(
        "resynth_candidates_rejected_total",
        "selection sites where no candidate improved the objective")
    gate_delta = registry.get_histogram(
        "resynth_gate_delta",
        "equivalent-2-input gates removed per applied replacement",
        buckets=(-8.0, -4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 8.0, 16.0))
    path_delta = registry.get_histogram(
        "resynth_path_delta",
        "paths removed from the line per applied replacement",
        buckets=(0.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8))
    if evaluator is not None:
        evaluator.prime_pass(
            work, session, k=k, perm_budget=perm_budget, seed=seed,
            max_specs=DEFAULT_MAX_SPECS,
        )
    snapshot = work.topological_order()
    marked: Set[str] = {
        o for o in work.output_set
        if work.gate(o).gtype not in (GateType.INPUT, GateType.CONST0,
                                      GateType.CONST1)
    }
    frozen: Set[str] = set()
    replacements = 0

    def mark(nets) -> None:
        for n in nets:
            if work.has_net(n) and work.gate(n).gtype not in (
                GateType.INPUT, GateType.CONST0, GateType.CONST1
            ):
                marked.add(n)

    try:
        for net in reversed(snapshot):
            if net not in marked or not work.has_net(net):
                continue
            gate = work.gate(net)
            if gate.gtype in (GateType.INPUT, GateType.CONST0,
                              GateType.CONST1):
                continue
            labels = session.labels()  # current after earlier replacements
            with tracer.span("candidate", net=net) as csp:
                with tracer.span("extract"):
                    cones = enumerate_candidate_cones(work, net, k, frozen)
                options = []
                with tracer.span("identify", cones=len(cones)):
                    for cone in cones:
                        option = evaluate_cone(
                            work, cone, labels, perm_budget=perm_budget,
                            seed=seed, exact=exact,
                            tt_cache=session.truth_tables, memo=memo,
                        )
                        if option is not None:
                            options.append(option)
                paths_now = current_paths_on(work, net, labels)
                chosen = selector(options, paths_now)
                if chosen is None:
                    rejected.inc()
                    mark(gate.fanins)
                    continue
                with tracer.span("replace"):
                    created = apply_replacement(work, chosen)
                frozen.update(created)
                mark(chosen.cone.inputs)
                replacements += 1
                accepted.inc()
                gate_delta.observe(chosen.gate_gain)
                path_delta.observe(paths_now - chosen.paths_on_output)
                csp.annotate(gate_gain=chosen.gate_gain,
                             path_delta=paths_now - chosen.paths_on_output)
    finally:
        if own_session:
            session.close()
    return replacements


def _check_resume(resume: PassCheckpoint, objective: str, k: int,
                  seed: int) -> None:
    """Reject checkpoints replayed against incompatible parameters."""
    for name, now in (("objective", objective), ("k", k), ("seed", seed)):
        then = getattr(resume, name)
        if then != now:
            raise ResumeMismatchError(
                f"checkpoint was taken with {name}={then!r}, "
                f"cannot resume with {name}={now!r}"
            )


def _run(
    circuit: Circuit,
    selector: Selector,
    objective: str,
    k: int,
    perm_budget: int,
    seed: int,
    max_passes: int,
    verify_patterns: int,
    decompose: bool = True,
    exact: bool = False,
    jobs: int = 1,
    on_pass: Optional[PassHook] = None,
    resume: Optional[PassCheckpoint] = None,
    tracer=None,
    registry: Optional[Registry] = None,
    memo=None,
    fabric=None,
) -> ResynthesisReport:
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    tracer = maybe_tracer(tracer)
    if registry is None:
        registry = get_registry()
    if isinstance(memo, str):
        # Convenience: a path opens a store with the run's registry.
        from ..memo import MemoStore

        memo = MemoStore(memo, registry=registry)
    evaluator = None
    if fabric is not None:
        # An explicit fabric always primes, even at jobs=1: the caller
        # chose where candidate evaluation runs (repro.parallel imports
        # from repro.resynth, so the import is lazy to stay acyclic).
        from ..parallel import ParallelEvaluator

        evaluator = ParallelEvaluator(max(jobs, 1), fabric=fabric,
                                      tracer=tracer, registry=registry)
    elif jobs > 1:
        from ..parallel import ParallelEvaluator

        evaluator = ParallelEvaluator(jobs, tracer=tracer,
                                      registry=registry)
    registry.inc("resynth_runs_total")
    run_start = time.perf_counter()
    run_span = tracer.span("run", circuit=circuit.name, objective=objective,
                           k=k, jobs=jobs, resumed=resume is not None)
    with run_span:
        setup_start = time.perf_counter()
        with tracer.span("setup"):
            if resume is not None:
                _check_resume(resume, objective, k, seed)
                # Continue exactly where the checkpoint left off: the
                # working circuit (already decomposed at the original
                # run's start) with its fresh-net counters, the pass
                # counter, and the accumulated report numbers.  Caches
                # (truth tables, identification) rebuild on demand —
                # they hold pure functions, so warm or cold they cannot
                # change any decision (the repro.parallel argument).
                work = resume.circuit.copy()
                gates_before = resume.gates_before
                paths_before = resume.paths_before
                total_replacements = resume.replacements
                mutations_prior = resume.mutations
                passes = resume.pass_no
                pass_seconds = list(resume.pass_seconds)
                seconds_prior = sum(pass_seconds)
                done = resume.done
            else:
                # Wide gates are split into 2-input trees first
                # (metric-neutral; see decompose_two_input) so candidate
                # growth can tunnel through them.
                work = (decompose_two_input(circuit) if decompose
                        else circuit.copy())
                gates_before = two_input_gate_count(work)
                total_replacements = 0
                mutations_prior = 0
                passes = 0
                pass_seconds = []
                seconds_prior = 0.0
                done = False
            epoch_base = work.epoch
            session = AnalysisSession(work, registry=registry, memo=memo,
                                      fabric=fabric)
        verify_seconds: List[float] = []
        try:
            with tracer.span("setup.labels"):
                paths_before = (session.total_paths() if resume is None
                                else paths_before)
            setup_seconds = time.perf_counter() - setup_start
            pass_hist = registry.get_histogram(
                "resynth_pass_seconds", "wall clock of one sweep pass")
            while not done and passes < max_passes:
                passes += 1
                tt = session.truth_tables
                hits0, misses0 = tt.hits, tt.misses
                pass_start = time.perf_counter()
                with tracer.span("pass", pass_no=passes) as pspan:
                    made = _resynthesis_pass(
                        work, selector, k, perm_budget, seed + passes,
                        exact, session=session, evaluator=evaluator,
                        tracer=tracer, registry=registry,
                    )
                    pspan.annotate(replacements=made,
                                   tt_hits=tt.hits - hits0,
                                   tt_misses=tt.misses - misses0)
                pass_wall = time.perf_counter() - pass_start
                pass_seconds.append(pass_wall)
                pass_hist.observe(pass_wall)
                registry.inc("resynth_passes_total")
                registry.inc("resynth_replacements_total", made)
                total_replacements += made
                if verify_patterns:
                    # Seeded per (seed, passes): each pass re-verifies
                    # against fresh patterns instead of re-checking the
                    # same ones.
                    verify_start = time.perf_counter()
                    with tracer.span("verify", pass_no=passes,
                                     patterns=verify_patterns):
                        rng = random.Random((seed << 20)
                                            ^ (passes * 0x9E3779B9)
                                            ^ 0x5EED)
                        words = random_words(circuit.inputs,
                                             verify_patterns, rng)
                        if not outputs_equal(circuit, work, words,
                                             verify_patterns):
                            raise AssertionError(
                                f"resynthesis changed the function of "
                                f"{circuit.name} in pass {passes}"
                            )
                    verify_seconds.append(
                        time.perf_counter() - verify_start)
                done = made == 0 or passes >= max_passes
                if on_pass is not None:
                    with tracer.span("checkpoint", pass_no=passes):
                        on_pass(PassCheckpoint(
                            objective=objective,
                            k=k,
                            seed=seed,
                            pass_no=passes,
                            circuit=work.copy(),
                            replacements=total_replacements,
                            mutations=(mutations_prior + work.epoch
                                       - epoch_base),
                            gates_before=gates_before,
                            paths_before=paths_before,
                            gates_now=two_input_gate_count(work),
                            paths_now=session.total_paths(),
                            pass_seconds=list(pass_seconds),
                            done=done,
                        ))
            paths_after = session.total_paths()
        finally:
            session.close()
            if evaluator is not None:
                evaluator.close()
        run_span.annotate(passes=passes, replacements=total_replacements)
    work.name = circuit.name
    timings: Dict[str, object] = {
        "setup_seconds": setup_seconds,
        "pass_seconds": pass_seconds,
        "total_seconds": seconds_prior + time.perf_counter() - run_start,
    }
    if verify_seconds:
        timings["verify_seconds"] = verify_seconds
    if evaluator is not None and evaluator.prime_seconds:
        timings["prime_seconds"] = list(evaluator.prime_seconds)
    if fabric is not None:
        timings["fabric"] = fabric.name
    return ResynthesisReport(
        circuit=work,
        objective=objective,
        k=k,
        passes=passes,
        replacements=total_replacements,
        gates_before=gates_before,
        gates_after=two_input_gate_count(work),
        paths_before=paths_before,
        paths_after=paths_after,
        mutations=mutations_prior + work.epoch - epoch_base,
        jobs=jobs,
        timings=timings,
    )


def procedure2(
    circuit: Circuit,
    k: int = 6,
    perm_budget: int = 200,
    seed: int = 0,
    max_passes: int = 10,
    verify_patterns: int = 0,
    decompose: bool = True,
    exact: bool = False,
    jobs: int = 1,
    on_pass: Optional[PassHook] = None,
    resume: Optional[PassCheckpoint] = None,
    tracer=None,
    registry: Optional[Registry] = None,
    memo=None,
    fabric=None,
) -> ResynthesisReport:
    """Procedure 2: reduce the number of gates (paths as tiebreak).

    Parameters
    ----------
    circuit:
        The circuit to optimize (not mutated).
    k:
        Maximum candidate-subcircuit input count (paper: 5 and 6).
    perm_budget:
        Permutations tried during identification (paper: 200).
    verify_patterns:
        When nonzero, each pass is checked against the original circuit on
        this many random patterns (defense in depth; raises on mismatch).
    jobs:
        Worker processes for candidate evaluation (1 = fully serial; the
        report is bit-identical either way, see :mod:`repro.parallel`).
    on_pass:
        Progress/checkpoint hook, called with a :class:`PassCheckpoint`
        after every pass (the service layer persists these).
    resume:
        Continue from a previous run's checkpoint instead of starting
        over; the report and result netlist are bit-identical to the
        uninterrupted run (docs/SERVICE.md states the contract).
    tracer:
        A :class:`repro.obs.Tracer` recording the run's span tree
        (run → pass → candidate → extract/identify/replace; see
        docs/OBSERVABILITY.md).  Default: the null tracer — the
        instrumented sites become no-ops and the report is unaffected
        either way (tracing never influences a decision).
    registry:
        A :class:`repro.obs.Registry` receiving the run's metrics;
        default: the process-wide registry.
    memo:
        Optional persistent identification cache — a
        :class:`repro.memo.MemoStore` or a store directory path.  Purely
        an accelerator: the report is bit-identical with the memo off,
        cold, or warm (the ``memo`` differential oracle fuzzes this; see
        docs/MEMO.md).
    fabric:
        Optional :class:`repro.fabric.Fabric` to run candidate
        evaluation on (serial, local process pool, or a remote worker
        fleet — docs/FABRIC.md).  The report is bit-identical on every
        backend at any shard count; the caller owns the fabric's
        lifecycle.  Without one, ``jobs > 1`` creates a process fabric
        internally, as before.
    """
    return _run(
        circuit, _select_for_gates, "gates", k, perm_budget, seed,
        max_passes, verify_patterns, decompose, exact, jobs,
        on_pass, resume, tracer, registry, memo, fabric,
    )


def procedure3(
    circuit: Circuit,
    k: int = 6,
    perm_budget: int = 200,
    seed: int = 0,
    max_passes: int = 10,
    verify_patterns: int = 0,
    decompose: bool = True,
    exact: bool = False,
    jobs: int = 1,
    on_pass: Optional[PassHook] = None,
    resume: Optional[PassCheckpoint] = None,
    tracer=None,
    registry: Optional[Registry] = None,
    memo=None,
    fabric=None,
) -> ResynthesisReport:
    """Procedure 3: reduce the number of paths (gate count unconstrained).

    ``exact=True`` augments identification with the exact decision
    procedure (see :func:`repro.resynth.evaluate_cone`); ``jobs``,
    ``on_pass``, ``resume``, ``tracer``, ``registry``, ``memo`` and
    ``fabric`` behave as in :func:`procedure2`.
    """
    return _run(
        circuit, _select_for_paths, "paths", k, perm_budget, seed,
        max_passes, verify_patterns, decompose, exact, jobs,
        on_pass, resume, tracer, registry, memo, fabric,
    )


def combined_procedure(
    circuit: Circuit,
    gate_weight: float = 10.0,
    k: int = 6,
    perm_budget: int = 200,
    seed: int = 0,
    max_passes: int = 10,
    verify_patterns: int = 0,
    decompose: bool = True,
    jobs: int = 1,
    on_pass: Optional[PassHook] = None,
    resume: Optional[PassCheckpoint] = None,
    tracer=None,
    registry: Optional[Registry] = None,
    memo=None,
    fabric=None,
) -> ResynthesisReport:
    """Section 4.3's combined gates+paths objective.

    ``gate_weight`` trades one equivalent 2-input gate against that many
    paths; large weights approach Procedure 2, zero approaches Procedure 3
    (restricted to non-worsening moves).
    """
    return _run(
        circuit, _make_combined_selector(gate_weight),
        f"combined(w={gate_weight})", k, perm_budget, seed, max_passes,
        verify_patterns, decompose, jobs=jobs, on_pass=on_pass,
        resume=resume, tracer=tracer, registry=registry, memo=memo,
        fabric=fabric,
    )
