"""JSON serialization for resynthesis reports and pass checkpoints.

One serialization, three consumers: the ``repro-resynth resynth --out
report.json`` CLI path, the job service's artifact store
(:mod:`repro.service.store`), and the ``resume`` differential oracle
(which round-trips every checkpoint through these functions so that
serialization bugs are caught by the same fuzzing that guards the
in-memory contract).

Circuits ride along as embedded ``repro-netlist`` documents
(:mod:`repro.io.json_io`), which round-trip a :class:`Circuit` exactly —
including gate insertion order, on which the canonical topological order
(and therefore the sweep order of a resumed run) depends.  The one piece
of circuit state the netlist document does not carry, the fresh-net
counters, is serialized alongside it.
"""

from __future__ import annotations

import json
from typing import Dict

from ..io.json_io import circuit_from_json, circuit_to_json
from ..netlist import Circuit
from .procedures import PassCheckpoint, ResynthesisReport

CHECKPOINT_FORMAT = "repro-resynth-checkpoint"
REPORT_FORMAT = "repro-resynth-report"
SERIALIZE_VERSION = 1


def _circuit_doc(circuit: Circuit) -> Dict[str, object]:
    return json.loads(circuit_to_json(circuit))


def _circuit_from_doc(doc: Dict[str, object],
                      fresh_counters: Dict[str, int]) -> Circuit:
    circuit = circuit_from_json(json.dumps(doc))
    # Whitebox: the counters are pure bookkeeping for fresh_net() and have
    # no public setter; restoring them keeps a deserialized circuit
    # behaviorally indistinguishable from the live one it snapshots.
    circuit._fresh_counters = dict(fresh_counters)
    return circuit


def _check_header(doc: Dict[str, object], expected_format: str) -> None:
    if doc.get("format") != expected_format:
        raise ValueError(f"not a {expected_format} document")
    if doc.get("version") != SERIALIZE_VERSION:
        raise ValueError(
            f"unsupported {expected_format} version {doc.get('version')!r}"
        )


# --------------------------------------------------------------------- #
# checkpoints
# --------------------------------------------------------------------- #


def checkpoint_to_doc(ckpt: PassCheckpoint) -> Dict[str, object]:
    """Serialize a pass checkpoint to a JSON-compatible dict."""
    return {
        "format": CHECKPOINT_FORMAT,
        "version": SERIALIZE_VERSION,
        "objective": ckpt.objective,
        "k": ckpt.k,
        "seed": ckpt.seed,
        "pass_no": ckpt.pass_no,
        "replacements": ckpt.replacements,
        "mutations": ckpt.mutations,
        "gates_before": ckpt.gates_before,
        "paths_before": ckpt.paths_before,
        "gates_now": ckpt.gates_now,
        "paths_now": ckpt.paths_now,
        "pass_seconds": list(ckpt.pass_seconds),
        "done": ckpt.done,
        "circuit": _circuit_doc(ckpt.circuit),
        "fresh_counters": dict(ckpt.circuit._fresh_counters),
    }


def checkpoint_from_doc(doc: Dict[str, object]) -> PassCheckpoint:
    """Rebuild a pass checkpoint from :func:`checkpoint_to_doc` output."""
    _check_header(doc, CHECKPOINT_FORMAT)
    return PassCheckpoint(
        objective=doc["objective"],
        k=doc["k"],
        seed=doc["seed"],
        pass_no=doc["pass_no"],
        circuit=_circuit_from_doc(doc["circuit"], doc["fresh_counters"]),
        replacements=doc["replacements"],
        mutations=doc["mutations"],
        gates_before=doc["gates_before"],
        paths_before=doc["paths_before"],
        gates_now=doc["gates_now"],
        paths_now=doc["paths_now"],
        pass_seconds=list(doc["pass_seconds"]),
        done=doc["done"],
    )


def checkpoint_to_json(ckpt: PassCheckpoint) -> str:
    """Serialize a pass checkpoint to a JSON string."""
    return json.dumps(checkpoint_to_doc(ckpt), indent=1, sort_keys=True)


def checkpoint_from_json(text: str) -> PassCheckpoint:
    """Parse a checkpoint previously written by :func:`checkpoint_to_json`."""
    return checkpoint_from_doc(json.loads(text))


# --------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------- #


def report_to_doc(report: ResynthesisReport) -> Dict[str, object]:
    """Serialize a resynthesis report (result netlist included)."""
    return {
        "format": REPORT_FORMAT,
        "version": SERIALIZE_VERSION,
        "objective": report.objective,
        "k": report.k,
        "passes": report.passes,
        "replacements": report.replacements,
        "gates_before": report.gates_before,
        "gates_after": report.gates_after,
        "paths_before": report.paths_before,
        "paths_after": report.paths_after,
        "mutations": report.mutations,
        "jobs": report.jobs,
        # Structured timings plus the flat legacy keys: old readers (and
        # tests) keep finding pass_seconds/total_seconds at the top level.
        "timings": dict(report.timings),
        "pass_seconds": list(report.pass_seconds),
        "total_seconds": report.total_seconds,
        "circuit": _circuit_doc(report.circuit),
    }


def report_from_doc(doc: Dict[str, object]) -> ResynthesisReport:
    """Rebuild a resynthesis report from :func:`report_to_doc` output.

    Documents written before the structured ``timings`` mapping existed
    carry only the flat ``pass_seconds``/``total_seconds`` keys; those
    still load, reconstituted into an equivalent ``timings``.
    """
    _check_header(doc, REPORT_FORMAT)
    timings = doc.get("timings")
    if timings is None:
        timings = {
            "pass_seconds": list(doc["pass_seconds"]),
            "total_seconds": doc["total_seconds"],
        }
    else:
        timings = dict(timings)
    return ResynthesisReport(
        circuit=circuit_from_json(json.dumps(doc["circuit"])),
        objective=doc["objective"],
        k=doc["k"],
        passes=doc["passes"],
        replacements=doc["replacements"],
        gates_before=doc["gates_before"],
        gates_after=doc["gates_after"],
        paths_before=doc["paths_before"],
        paths_after=doc["paths_after"],
        mutations=doc["mutations"],
        jobs=doc["jobs"],
        timings=timings,
    )


def report_to_json(report: ResynthesisReport) -> str:
    """Serialize a resynthesis report to a JSON string."""
    return json.dumps(report_to_doc(report), indent=1, sort_keys=True)


def report_from_json(text: str) -> ResynthesisReport:
    """Parse a report previously written by :func:`report_to_json`."""
    return report_from_doc(json.loads(text))
