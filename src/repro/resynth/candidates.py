"""Candidate subcircuit enumeration (Section 4.1).

Starting from the single gate driving line ``g`` (subcircuit ``C_0``), every
subcircuit ``C_i`` spawns children ``C_i ∪ {H}`` for each gate ``H`` driving
one of ``C_i``'s input lines, as long as the child's input count stays
within ``K``.  Enumeration is breadth-first with structural deduplication,
and a hard cap bounds the worst case.

A *frozen* net set lets the procedures keep already-emitted comparison-unit
internals out of new candidates (selected units must stay intact — the
paper skips "gate-outputs that become internal to comparison units already
selected").

Enumeration is a pure, deterministic function of the circuit structure
and its arguments — no randomness, no mutation, and a stable result
order (breadth-first, fanin order within a level).  That purity is what
lets the parallel layer (:mod:`repro.parallel`) enumerate the same
cones as the serial sweep and ship their
:func:`~repro.sim.cone_signature` keys to worker processes.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterable, List, Optional, Set

from ..analysis import Cone, cone_inputs, make_cone
from ..netlist import Circuit, GateType

#: Safety cap on candidates per output line.
DEFAULT_MAX_CANDIDATES = 128


def enumerate_candidate_cones(
    circuit: Circuit,
    output: str,
    max_inputs: int,
    frozen: Optional[Set[str]] = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> List[Cone]:
    """All candidate subcircuits with output line *output*.

    Parameters
    ----------
    max_inputs:
        The paper's ``K``: candidates whose input count exceeds this are
        neither kept nor expanded.
    frozen:
        Nets that may not become members (cone growth treats them as hard
        inputs): internals of comparison units selected earlier.
    max_candidates:
        Hard cap on the number of candidates returned (breadth-first, so
        the smallest subcircuits always survive a cap).

    The single-gate subcircuit ``C_0`` is always first in the result when
    its input count allows (the paper keeps it so that a comparison
    function always exists for AND/OR-family gates and gate count never
    increases).
    """
    frozen = frozen or set()
    gate0 = circuit.gate(output)
    if gate0.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
        return []

    start = frozenset({output})
    seen: Set[FrozenSet[str]] = {start}
    queue = deque([start])
    cones: List[Cone] = []
    while queue and len(cones) < max_candidates:
        members = queue.popleft()
        inputs = cone_inputs(circuit, set(members))
        if len(inputs) > max_inputs:
            # Matching the paper, over-wide subcircuits are neither kept
            # nor expanded (expansion could shrink the input count again,
            # but Section 4.1 bounds the search exactly this way).
            continue
        cones.append(Cone(output, members, tuple(inputs)))
        for h in inputs:
            hg = circuit.gate(h)
            if hg.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
                continue
            if h in frozen:
                continue
            child = members | {h}
            if child in seen:
                continue
            seen.add(child)
            queue.append(child)
    return cones


def candidate_count_bound(max_inputs: int) -> int:
    """Upper bound on candidates any single output line can yield.

    Currently the flat safety cap :data:`DEFAULT_MAX_CANDIDATES`
    (breadth-first enumeration keeps the smallest subcircuits under any
    cap); documented and tested as the growth bound per site.
    """
    return DEFAULT_MAX_CANDIDATES
