"""Scan-chain modeling: how two-pattern tests are actually applied.

The paper's circuits are *fully scanned*: the sequential elements form a
shift chain, and the combinational core (what this library manipulates) is
exercised through it.  For stuck-at tests one load suffices; two-pattern
delay tests need a vector *pair*, and how the second vector arises is a
real constraint:

* **enhanced scan** — both vectors arbitrary (each cell holds two bits);
  this is what the paper (and our Table 7 campaigns) assume;
* **launch-on-shift (LOS)** — ``v2`` is ``v1`` shifted by one chain
  position, with the scan-in bit appended;
* **launch-on-capture (LOC)** — ``v2`` is the circuit's own response to
  ``v1`` on the state inputs (primary inputs stay put).

This module provides the chain model, the vector-pair generators for each
style, and a coverage comparison: restricting the pair space (LOS/LOC)
loses robust path-delay-fault coverage relative to enhanced scan — the
quantitative footnote to the paper's enhanced-scan assumption.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .netlist import Circuit
from .pdf import PathFault, RobustCriterion, robust_faults_detected, simulate_pairs
from .sim.logicsim import simulate
from .sim.patterns import random_words


class ScanStyle(enum.Enum):
    """How the second vector of a delay test is produced."""

    ENHANCED = "enhanced"
    LAUNCH_ON_SHIFT = "los"
    LAUNCH_ON_CAPTURE = "loc"


@dataclass
class ScanChain:
    """A scan chain over a combinational core.

    ``state_inputs`` are the core's pseudo primary inputs fed by scan
    cells, in chain order (scan-in first); ``state_outputs`` are the core
    outputs captured back into the chain.  Remaining core inputs are true
    primary inputs (held stable across the launch cycle, as on a tester).
    """

    circuit: Circuit
    state_inputs: List[str]
    state_outputs: List[str]

    def __post_init__(self) -> None:
        for si in self.state_inputs:
            if si not in self.circuit.inputs:
                raise ValueError(f"{si!r} is not a core input")
        for so in self.state_outputs:
            if so not in self.circuit.output_set:
                raise ValueError(f"{so!r} is not a core output")

    @property
    def primary_inputs(self) -> List[str]:
        """Core inputs not driven by the chain."""
        chain = set(self.state_inputs)
        return [pi for pi in self.circuit.inputs if pi not in chain]

    # -- vector-pair construction ------------------------------------------

    def shift_vector(
        self, v1: Dict[str, int], scan_in_bit: int
    ) -> Dict[str, int]:
        """LOS second vector: chain shifted one position."""
        v2 = dict(v1)
        prev = scan_in_bit & 1
        for cell in self.state_inputs:
            v2[cell], prev = prev, v1[cell]
        return v2

    def capture_vector(self, v1: Dict[str, int]) -> Dict[str, int]:
        """LOC second vector: state inputs get the core's response to v1."""
        response = simulate(
            self.circuit, {pi: v1.get(pi, 0) for pi in self.circuit.inputs}, 1
        )
        v2 = dict(v1)
        for cell, out in zip(self.state_inputs, self.state_outputs):
            v2[cell] = response[out] & 1
        return v2

    def random_pair(
        self, style: ScanStyle, rng: random.Random
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """One random two-pattern test under *style*'s constraint."""
        v1 = {pi: rng.randint(0, 1) for pi in self.circuit.inputs}
        if style is ScanStyle.ENHANCED:
            v2 = {pi: rng.randint(0, 1) for pi in self.circuit.inputs}
        elif style is ScanStyle.LAUNCH_ON_SHIFT:
            v2 = self.shift_vector(v1, rng.randint(0, 1))
        else:
            v2 = self.capture_vector(v1)
        return v1, v2


def default_chain(circuit: Circuit, state_fraction: float = 0.7,
                  seed: int = 0) -> ScanChain:
    """A deterministic chain assignment over a core's interface.

    Mimics the ISCAS-89 situation where most core inputs/outputs are scan
    cells: the first ``state_fraction`` of inputs (and as many outputs)
    become chain positions.
    """
    rng = random.Random(seed)
    inputs = list(circuit.inputs)
    outputs = list(dict.fromkeys(circuit.outputs))
    n_state = min(
        int(len(inputs) * state_fraction), len(inputs), len(outputs)
    )
    state_in = inputs[:n_state]
    state_out = outputs[:n_state]
    rng.shuffle(state_out)
    return ScanChain(circuit, state_in, state_out)


@dataclass
class ScanCoverageComparison:
    """Robust PDF coverage achieved under each scan style."""

    circuit_name: str
    n_tests: int
    detected: Dict[ScanStyle, int]
    total_faults: int

    def render(self) -> str:
        """Aligned comparison table."""
        from .experiments.format import render_table

        rows = [
            (style.value, self.detected[style],
             f"{100 * self.detected[style] / max(self.total_faults, 1):.3f}%")
            for style in ScanStyle
        ]
        return render_table(
            ["scan style", "robust PDF detected", "coverage"],
            rows,
            title=(
                f"Scan-style comparison on {self.circuit_name} "
                f"({self.n_tests:,} two-pattern tests)"
            ),
        )


def compare_scan_styles(
    chain: ScanChain,
    n_tests: int = 2_000,
    seed: int = 0,
    batch_size: int = 128,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
) -> ScanCoverageComparison:
    """Robust PDF detection under enhanced scan vs LOS vs LOC.

    The same number of random tests per style; LOS/LOC pairs are built
    from the same first vectors, so the comparison isolates the
    pair-space restriction.
    """
    from .pdf import total_path_faults

    circuit = chain.circuit
    detected: Dict[ScanStyle, Set[PathFault]] = {s: set() for s in ScanStyle}
    rng_master = random.Random(seed)

    applied = 0
    while applied < n_tests:
        width = min(batch_size, n_tests - applied)
        seeds = [rng_master.getrandbits(32) for _ in range(width)]
        for style in ScanStyle:
            w1: Dict[str, int] = {pi: 0 for pi in circuit.inputs}
            w2: Dict[str, int] = {pi: 0 for pi in circuit.inputs}
            for b, s in enumerate(seeds):
                rng = random.Random((s << 2) | 1)
                v1, v2 = chain.random_pair(style, rng)
                for pi in circuit.inputs:
                    if v1[pi]:
                        w1[pi] |= 1 << b
                    if v2[pi]:
                        w2[pi] |= 1 << b
            pw = simulate_pairs(circuit, w1, w2, width)
            detected[style] |= robust_faults_detected(circuit, pw, criterion)
        applied += width

    return ScanCoverageComparison(
        circuit_name=circuit.name,
        n_tests=n_tests,
        detected={s: len(d) for s, d in detected.items()},
        total_faults=total_path_faults(circuit),
    )
