"""The fabric task registry: kinds, run functions and JSON wire codecs.

A *task kind* packages three things under one name: the pure ``run``
function a worker executes, and the payload/result codecs that move the
task across the JSON wire (``POST /tasks``,
:class:`~repro.fabric.remote.RemoteFabric`).  In-process backends skip
the codecs entirely — :class:`~repro.fabric.core.SerialFabric` calls
``run`` inline and :class:`~repro.fabric.core.ProcessFabric` pickles the
in-memory payload — so the wire round-trip must be *lossless*: a decoded
payload runs to exactly the result the in-memory payload would have
produced.  ``tests/fabric/test_wire.py`` pins that round-trip.

The production kinds wrap the pickling-boundary functions of
:mod:`repro.parallel.worker` (unchanged — they remain the complete
semantic boundary of candidate evaluation):

``extract``
    Cone slices to truth tables (``extract_chunk``).  Payload items are
    ``(cone_signature, n_inputs)`` pairs; results are
    ``(signature, n, table)`` rows.
``identify``
    Unique tables to comparison-function search results
    (``identify_chunk``).  Payload carries the ``(table, n)`` items plus
    the pass's identification knobs; results are
    ``(table, n, hits, tried)`` rows.

Wire-format notes (docs/FABRIC.md has the full reference):

* Truth tables are hex *strings*, never JSON numbers — a table of an
  ``n``-input cone spans ``2**n`` bits (65,536 at the K=6 default's
  reconvergent extremes), far past IEEE-754 exactness; the hex idiom is
  shared with :mod:`repro.memo`.
* Cone signatures are nested tuples in memory and nested arrays on the
  wire; decoding rebuilds tuples recursively.  JSON expands shared
  subtree references into trees (pickle preserves the sharing), which
  is acceptable at candidate-cone scale and measured in the bench.
* ``inject_crash`` travels inside the payload, so the fault-injection
  knob exercises every backend's failure path, remote included.

Tests may register extra kinds (:func:`register_task_kind`) — e.g. a
sleeping echo to provoke out-of-order completion — without touching the
production registry entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .core import FabricTask

__all__ = [
    "TaskKind",
    "decode_task",
    "encode_task",
    "decode_result",
    "encode_result",
    "register_task_kind",
    "task_kind",
    "task_kind_names",
    "run_task",
]


def _identity(value: object) -> object:
    return value


@dataclass(frozen=True)
class TaskKind:
    """One registered task kind.

    ``run`` maps an in-memory payload to an in-memory result and must be
    a pure function of it.  The four codecs map payloads/results to and
    from JSON-able documents; they default to the identity (fine for
    payloads that are already plain JSON data).  Decoders face untrusted
    input on the service side and must raise :class:`ValueError` on
    anything malformed.
    """

    name: str
    run: Callable[[Dict[str, object]], object]
    encode_payload: Callable[[object], object] = _identity
    decode_payload: Callable[[object], object] = _identity
    encode_result: Callable[[object], object] = _identity
    decode_result: Callable[[object], object] = _identity


_KINDS: Dict[str, TaskKind] = {}


def register_task_kind(kind: TaskKind) -> TaskKind:
    """Register (or replace) a task kind; returns it for convenience."""
    if not kind.name:
        raise ValueError("task kind needs a non-empty name")
    _KINDS[kind.name] = kind
    return kind


def task_kind(name: str) -> TaskKind:
    """The registered kind, or :class:`ValueError` for unknown names."""
    try:
        return _KINDS[name]
    except KeyError:
        raise ValueError(
            f"unknown task kind {name!r} (registered: "
            f"{', '.join(sorted(_KINDS)) or 'none'})"
        ) from None


def task_kind_names() -> List[str]:
    """Sorted names of every registered kind."""
    return sorted(_KINDS)


def run_task(task: FabricTask) -> object:
    """Execute one task in this process (every backend bottoms out here)."""
    return task_kind(task.kind).run(task.payload)


# --------------------------------------------------------------------- #
# wire envelope
# --------------------------------------------------------------------- #


def encode_task(task: FabricTask) -> Dict[str, object]:
    """The JSON document of one task: ``{"kind", "payload"}``."""
    kind = task_kind(task.kind)
    return {"kind": task.kind, "payload": kind.encode_payload(task.payload)}


def decode_task(doc: object) -> FabricTask:
    """Rebuild a task from its wire document (ValueError on anomalies)."""
    if not isinstance(doc, dict):
        raise ValueError("task document is not an object")
    name = doc.get("kind")
    if not isinstance(name, str):
        raise ValueError("task kind is not a string")
    kind = task_kind(name)
    payload = kind.decode_payload(doc.get("payload"))
    if not isinstance(payload, dict):
        raise ValueError(f"decoded {name!r} payload is not an object")
    return FabricTask(kind=name, payload=payload)


def encode_result(kind_name: str, result: object) -> object:
    """JSON-ready form of one task's result."""
    return task_kind(kind_name).encode_result(result)


def decode_result(kind_name: str, value: object) -> object:
    """Rebuild one task's result from the wire (ValueError on anomalies)."""
    return task_kind(kind_name).decode_result(value)


# --------------------------------------------------------------------- #
# shared codec helpers
# --------------------------------------------------------------------- #


def _encode_signature(sig: Tuple) -> List[object]:
    """Nested tuples to nested JSON arrays (leaves are str/int)."""
    return [
        _encode_signature(part) if isinstance(part, tuple) else part
        for part in sig
    ]


def _decode_signature(value: object) -> Tuple:
    """Nested JSON arrays back to the tuple DAG shape (as a tree)."""
    if not isinstance(value, list):
        raise ValueError("cone signature node is not an array")
    out = []
    for part in value:
        if isinstance(part, list):
            out.append(_decode_signature(part))
        elif isinstance(part, str):
            out.append(part)
        elif isinstance(part, int) and not isinstance(part, bool):
            out.append(part)
        else:
            raise ValueError(
                f"cone signature leaf has type {type(part).__name__}")
    return tuple(out)


def _decode_n(value: object) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError("input count is not a non-negative integer")
    return value


def _encode_table(table: int) -> str:
    return format(table, "x")


def _decode_table(value: object, n: int) -> int:
    if not isinstance(value, str):
        raise ValueError("truth table is not a hex string")
    table = int(value, 16)
    if not 0 <= table < (1 << (1 << n)):
        raise ValueError(f"table out of range for {n} inputs")
    return table


def _decode_bool(value: object, what: str) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"{what} is not a boolean")
    return value


def _decode_int(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{what} is not an integer")
    return value


# --------------------------------------------------------------------- #
# the extraction kind
# --------------------------------------------------------------------- #


def _run_extract(payload: Dict[str, object]) -> List[Tuple]:
    # Imported lazily: the planner package imports the fabric, so the
    # fabric must not import the planner package at module scope.
    from ..parallel.worker import extract_chunk

    return extract_chunk(payload["items"],
                         inject_crash=bool(payload.get("inject_crash")))


def _encode_extract_payload(payload: Dict[str, object]) -> object:
    return {
        "items": [[_encode_signature(sig), n]
                  for sig, n in payload["items"]],
        "inject_crash": bool(payload.get("inject_crash")),
    }


def _decode_extract_payload(value: object) -> Dict[str, object]:
    if not isinstance(value, dict) or not isinstance(
            value.get("items"), list):
        raise ValueError("extract payload is not {'items': [...]}")
    items = []
    for row in value["items"]:
        if not isinstance(row, list) or len(row) != 2:
            raise ValueError("extract item is not a [signature, n] pair")
        items.append((_decode_signature(row[0]), _decode_n(row[1])))
    return {
        "items": items,
        "inject_crash": _decode_bool(
            value.get("inject_crash", False), "inject_crash"),
    }


def _encode_extract_result(rows: List[Tuple]) -> object:
    return [[_encode_signature(sig), n, _encode_table(table)]
            for sig, n, table in rows]


def _decode_extract_result(value: object) -> List[Tuple]:
    if not isinstance(value, list):
        raise ValueError("extract result is not an array")
    rows = []
    for row in value:
        if not isinstance(row, list) or len(row) != 3:
            raise ValueError("extract row is not [signature, n, table]")
        n = _decode_n(row[1])
        rows.append((_decode_signature(row[0]), n,
                     _decode_table(row[2], n)))
    return rows


register_task_kind(TaskKind(
    name="extract",
    run=_run_extract,
    encode_payload=_encode_extract_payload,
    decode_payload=_decode_extract_payload,
    encode_result=_encode_extract_result,
    decode_result=_decode_extract_result,
))


# --------------------------------------------------------------------- #
# the identification kind
# --------------------------------------------------------------------- #

_IDENTIFY_KNOBS = ("perm_budget", "try_offset", "seed", "max_specs")


def _run_identify(payload: Dict[str, object]) -> List[Tuple]:
    from ..parallel.worker import identify_chunk

    return identify_chunk(
        payload["items"],
        payload["perm_budget"],
        payload["try_offset"],
        payload["seed"],
        payload["max_specs"],
        inject_crash=bool(payload.get("inject_crash")),
    )


def _encode_identify_payload(payload: Dict[str, object]) -> object:
    doc: Dict[str, object] = {
        "items": [[_encode_table(table), n]
                  for table, n in payload["items"]],
        "inject_crash": bool(payload.get("inject_crash")),
    }
    for knob in _IDENTIFY_KNOBS:
        doc[knob] = payload[knob]
    return doc


def _decode_identify_payload(value: object) -> Dict[str, object]:
    if not isinstance(value, dict) or not isinstance(
            value.get("items"), list):
        raise ValueError("identify payload is not {'items': [...]}")
    items = []
    for row in value["items"]:
        if not isinstance(row, list) or len(row) != 2:
            raise ValueError("identify item is not a [table, n] pair")
        n = _decode_n(row[1])
        items.append((_decode_table(row[0], n), n))
    payload: Dict[str, object] = {
        "items": items,
        "inject_crash": _decode_bool(
            value.get("inject_crash", False), "inject_crash"),
        "try_offset": _decode_bool(value.get("try_offset"), "try_offset"),
    }
    for knob in ("perm_budget", "seed", "max_specs"):
        payload[knob] = _decode_int(value.get(knob), knob)
    return payload


def _encode_identify_result(rows: List[Tuple]) -> object:
    return [
        [_encode_table(table), n,
         [[list(perm), lo, hi, bool(comp)] for perm, lo, hi, comp in hits],
         tried]
        for table, n, hits, tried in rows
    ]


def _decode_identify_result(value: object) -> List[Tuple]:
    if not isinstance(value, list):
        raise ValueError("identify result is not an array")
    rows = []
    for row in value:
        if not isinstance(row, list) or len(row) != 4:
            raise ValueError(
                "identify row is not [table, n, hits, tried]")
        table_hex, n_raw, hits_raw, tried = row
        n = _decode_n(n_raw)
        table = _decode_table(table_hex, n)
        if not isinstance(hits_raw, list):
            raise ValueError("identify hits is not an array")
        expected = list(range(n))
        hits = []
        for hit in hits_raw:
            if not isinstance(hit, list) or len(hit) != 4:
                raise ValueError("hit row is not [perm, L, U, comp]")
            perm_raw, lo, hi, comp = hit
            if not isinstance(perm_raw, list):
                raise ValueError("hit permutation is not an array")
            perm = tuple(_decode_int(x, "permutation entry")
                         for x in perm_raw)
            if sorted(perm) != expected:
                raise ValueError(
                    f"{perm!r} is not a permutation of 0..{n - 1}")
            lo = _decode_int(lo, "interval lower bound")
            hi = _decode_int(hi, "interval upper bound")
            if not 0 <= lo <= hi < (1 << n):
                raise ValueError(f"interval [{lo}, {hi}] out of range")
            hits.append((perm, lo, hi, _decode_bool(comp, "complement")))
        rows.append((table, n, tuple(hits),
                     _decode_int(tried, "tried-count")))
    return rows


register_task_kind(TaskKind(
    name="identify",
    run=_run_identify,
    encode_payload=_encode_identify_payload,
    decode_payload=_decode_identify_payload,
    encode_result=_encode_identify_result,
    decode_result=_decode_identify_result,
))


# --------------------------------------------------------------------- #
# the whole-cell resynthesis kind
# --------------------------------------------------------------------- #
#
# ``resynth_cell`` ships one *entire* resynthesis run — a sweep cell —
# as a single task: the payload is a job spec document, the result the
# finished report document (result netlist embedded).  Where ``extract``
# and ``identify`` fan one job's candidate evaluation out, this kind
# fans *jobs themselves* out, which is how ``repro.sweep`` exercises a
# remote fleet with whole cells.  The run function goes through the
# same bound-procedure path as the job service's runner, so a cell's
# report is bit-identical to a standalone run of the same spec.
#
# ``memo`` (optional, a directory path on the executing host) names a
# persistent identification cache; like everywhere else it can change
# only the wall clock, never the report, so it is excluded from cell
# identity.


def _run_resynth_cell(payload: Dict[str, object]) -> Dict[str, object]:
    # Imported lazily: the service package imports the fabric, so the
    # fabric must not import the service package at module scope.
    from ..resynth.serialize import report_to_doc
    from ..service.jobspec import resolve_circuit, spec_from_doc
    from ..service.runner import procedure_call

    spec = spec_from_doc(payload["spec"])
    circuit = resolve_circuit(spec)
    report = procedure_call(spec)(circuit, memo=payload.get("memo"))
    return report_to_doc(report)


def _encode_resynth_cell_payload(payload: Dict[str, object]) -> object:
    doc: Dict[str, object] = {"spec": dict(payload["spec"])}
    if payload.get("memo") is not None:
        doc["memo"] = payload["memo"]
    return doc


def _decode_resynth_cell_payload(value: object) -> Dict[str, object]:
    if not isinstance(value, dict) or "spec" not in value:
        raise ValueError("resynth_cell payload is not {'spec': {...}}")
    from ..service.jobspec import spec_from_doc

    # spec_from_doc raises JobSpecError (a ValueError) on any anomaly;
    # re-encoding canonicalizes defaulted fields.
    payload: Dict[str, object] = {
        "spec": spec_from_doc(value["spec"]).to_doc()}
    memo = value.get("memo")
    if memo is not None:
        if not isinstance(memo, str):
            raise ValueError("resynth_cell memo is not a string path")
        payload["memo"] = memo
    return payload


def _decode_resynth_cell_result(value: object) -> Dict[str, object]:
    from ..resynth.serialize import report_from_doc, report_to_doc

    if not isinstance(value, dict):
        raise ValueError("resynth_cell result is not an object")
    try:
        # Full rebuild-and-reencode: the strongest shape check there is,
        # and it canonicalizes the document in one move.
        return report_to_doc(report_from_doc(value))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"resynth_cell result is not a valid report document: {exc}"
        ) from None


register_task_kind(TaskKind(
    name="resynth_cell",
    run=_run_resynth_cell,
    decode_payload=_decode_resynth_cell_payload,
    encode_payload=_encode_resynth_cell_payload,
    decode_result=_decode_resynth_cell_result,
))
