"""RemoteFabric: fabric tasks over the service HTTP protocol.

Ships :class:`~repro.fabric.core.FabricTask` batches as JSON
(:mod:`repro.fabric.tasks` wire format) to the ``POST /tasks`` route of
one or more service workers (``repro-resynth serve --task-workers N``),
and reassembles results in task order.

Execution model — **work-stealing pull loops**: all shards of a round go
into one shared queue; one puller thread per worker URL repeatedly takes
the next shard, POSTs it, and records the result.  Fast workers simply
come back for more, so load balances without any placement logic, and
listing the same URL twice pulls two shards concurrently from one
server.

Liveness reuses the supervisor's heartbeat discipline
(:class:`repro.service.supervisor.SupervisorConfig`): a worker is alive
exactly as long as it keeps answering within ``heartbeat_timeout``
seconds.  A connection error or timeout marks the shard *lost* — it goes
straight back into the shared queue for any live worker to steal — and
counts against the silent worker; after ``max_worker_failures``
consecutive failures that worker is dropped from the fleet for the
fabric's lifetime, exactly like a supervised subprocess whose heartbeat
went stale.  Only when *every* worker is dead with shards outstanding
does the round raise :class:`~repro.fabric.core.FabricExecutionError`.

Task-level failures (the worker answered, the task raised — e.g. a
poisoned payload) are different: they are deterministic, so redispatch
cannot help.  They flow into the base class's bounded retry
(``max_retries``, default 2 here since a "task error" may still hide an
infrastructure flake on the worker) and then surface as one clean
:class:`~repro.fabric.core.FabricExecutionError`.

Determinism: workers only ever run registered pure functions, and
results are keyed back to their task index — so completion order,
shard-to-worker placement, retries and redispatch are all unobservable
in the output.  The ``parallel`` fuzz oracle runs serial-vs-remote legs
at pinned shard counts to enforce exactly that (docs/FABRIC.md).
"""

from __future__ import annotations

import http.client
import threading
import time
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs import Registry
from .core import Fabric, FabricExecutionError
from .tasks import decode_result, encode_task

__all__ = ["RemoteFabric", "RemoteTaskError"]


class RemoteTaskError(RuntimeError):
    """A remote worker executed the task and reported a failure."""


class RemoteFabric(Fabric):
    """Execute fabric tasks on a fleet of service workers over HTTP.

    Parameters
    ----------
    workers:
        Base URLs of task-serving services (``serve --task-workers N``).
        A URL may repeat to pull that many shards concurrently from one
        server.
    heartbeat_timeout:
        Seconds a worker may stay silent on one request before it is
        treated as dead for that shard (the socket timeout; the
        supervisor's liveness discipline).  Must cover one shard's
        compute, hence the generous default.
    max_retries:
        Bounded re-executions of a task whose *execution* failed on a
        live worker (lost shards are redispatched separately and do not
        consume these).
    max_worker_failures:
        Consecutive connection failures after which a worker is dropped
        from the fleet for the fabric's lifetime.
    backoff_base:
        First retry-after-connection-failure sleep; doubles per
        consecutive failure of the same worker.
    client_factory:
        ``(url, timeout) -> client`` hook (tests); the default builds
        :class:`repro.service.client.ServiceClient`.  The client only
        needs a ``run_tasks(task_docs)`` method.
    """

    name = "remote"

    def __init__(
        self,
        workers: Sequence[str],
        heartbeat_timeout: float = 300.0,
        max_retries: int = 2,
        max_worker_failures: int = 3,
        backoff_base: float = 0.1,
        shards: Optional[int] = None,
        tracer=None,
        registry: Optional[Registry] = None,
        client_factory: Optional[Callable[[str, float], object]] = None,
    ) -> None:
        workers = [w.rstrip("/") for w in workers if w]
        if not workers:
            raise ValueError("RemoteFabric needs at least one worker URL")
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if max_worker_failures < 1:
            raise ValueError("max_worker_failures must be >= 1")
        super().__init__(max_retries=max_retries, shards=shards,
                         tracer=tracer, registry=registry)
        self.workers = workers
        self.parallelism = len(workers)
        self.heartbeat_timeout = heartbeat_timeout
        self.max_worker_failures = max_worker_failures
        self.backoff_base = backoff_base
        if client_factory is None:
            # Imported here, not at module top: repro.service imports the
            # fabric core submodules, so the package boundary stays
            # one-directional at import time.
            from ..service.client import ServiceClient

            def client_factory(url: str, timeout: float) -> object:
                return ServiceClient(url, timeout=timeout)

        self._clients: List[Tuple[str, object]] = [
            (url, client_factory(url, heartbeat_timeout)) for url in workers
        ]
        #: Worker URLs dropped for the fabric's lifetime (indices into
        #: ``workers``, so a repeated URL is tracked per puller).
        self._dead: set = set()

    # ------------------------------------------------------------------ #

    def live_workers(self) -> List[str]:
        """URLs still in the fleet (dead ones dropped, repeats kept)."""
        return [url for i, (url, _client) in enumerate(self._clients)
                if i not in self._dead]

    def _run_round(self, batch):  # noqa: C901 — one coherent pull loop
        from ..service.client import ServiceAPIError, ServiceConnectionError

        state = {
            "queue": deque(batch),
            "in_flight": 0,
            "outcomes": [],
        }
        lock = threading.Lock()
        registry = self.registry
        task_hist = registry.get_histogram(
            "fabric_task_seconds",
            "submit-to-done latency of one fabric task (queue + compute)")

        def settle(index: int, ok: bool, value: object) -> None:
            with lock:
                state["outcomes"].append((index, ok, value))
                state["in_flight"] -= 1

        def pull(worker_index: int, url: str, client: object) -> None:
            failures = 0
            while True:
                with lock:
                    if state["queue"]:
                        index, task = state["queue"].popleft()
                        state["in_flight"] += 1
                    elif state["in_flight"] > 0:
                        index = None  # a redispatch may still land here
                    else:
                        return
                if index is None:
                    time.sleep(0.01)
                    continue
                sent = time.perf_counter()
                registry.inc("fabric_remote_requests_total")
                try:
                    answer = client.run_tasks([encode_task(task)])
                except ServiceAPIError as exc:
                    # The worker answered: an HTTP-level refusal (route
                    # disabled, malformed task) is deterministic — report
                    # it as the task's failure, don't blame the worker.
                    settle(index, False, exc)
                    failures = 0
                    continue
                except (ServiceConnectionError, OSError,
                        http.client.HTTPException) as exc:
                    # Lost shard: the worker died mid-shard or went
                    # silent past the heartbeat timeout.  Redispatch the
                    # shard to whichever worker steals it next and count
                    # the silence against this one.
                    failures += 1
                    registry.inc("fabric_lost_shards_total")
                    with lock:
                        state["queue"].append((index, task))
                        state["in_flight"] -= 1
                        if failures >= self.max_worker_failures:
                            self._dead.add(worker_index)
                    if failures >= self.max_worker_failures:
                        registry.inc("fabric_dead_workers_total")
                        return
                    time.sleep(self.backoff_base * (2 ** (failures - 1)))
                    continue
                task_hist.observe(time.perf_counter() - sent)
                failures = 0
                try:
                    rows = answer["results"]
                    if not isinstance(rows, list) or len(rows) != 1:
                        raise ValueError(
                            f"expected 1 result, got {len(rows)!r}")
                    row = rows[0]
                    if row.get("ok"):
                        settle(index, True,
                               decode_result(task.kind, row.get("result")))
                    else:
                        settle(index, False, RemoteTaskError(
                            f"task failed on {url}: {row.get('error')}"))
                except (KeyError, TypeError, ValueError) as exc:
                    settle(index, False, RemoteTaskError(
                        f"malformed task response from {url}: {exc}"))

        threads = []
        for worker_index, (url, client) in enumerate(self._clients):
            if worker_index in self._dead:
                continue
            thread = threading.Thread(
                target=pull, args=(worker_index, url, client),
                name=f"repro-fabric-pull-{worker_index}", daemon=True,
            )
            thread.start()
            threads.append(thread)
        if not threads:
            raise FabricExecutionError(
                f"no live remote workers left in the fleet "
                f"(all of {', '.join(self.workers)} were dropped)")
        for thread in threads:
            thread.join()
        if state["queue"]:
            raise FabricExecutionError(
                f"{len(state['queue'])} shard(s) outstanding with every "
                f"remote worker unreachable (fleet: "
                f"{', '.join(self.workers)}; heartbeat timeout "
                f"{self.heartbeat_timeout:g}s, {self.max_worker_failures} "
                f"failure(s) per worker)")
        return state["outcomes"]
