"""repro.fabric — one fan-out abstraction from candidate evaluation to cluster.

A :class:`Fabric` maps a batch of :class:`FabricTask` values (pure
functions from the :mod:`repro.fabric.tasks` registry) to their results
in task order, with bounded task-level retry and ``fabric_*`` obs
instrumentation.  Three backends, all bit-identical by contract:

============================  =========================================
:class:`SerialFabric`         inline, in-process — the reference
:class:`ProcessFabric`        local ``ProcessPoolExecutor`` fan-out
:class:`RemoteFabric`         JSON over the service HTTP protocol to a
                              worker fleet (``POST /tasks``)
============================  =========================================

See docs/FABRIC.md for the backend matrix, the determinism contract and
the wire format.  :mod:`repro.parallel` is the cache-priming planner
that sits on top of this layer.

``RemoteFabric`` is exported lazily (module ``__getattr__``): importing
it pulls in :mod:`repro.service` for its HTTP client, and the in-process
backends should not pay for that.
"""

from .core import (
    Fabric,
    FabricExecutionError,
    FabricTask,
    ProcessFabric,
    SerialFabric,
    preferred_start_method,
)
from .tasks import (
    TaskKind,
    decode_result,
    decode_task,
    encode_result,
    encode_task,
    register_task_kind,
    run_task,
    task_kind,
    task_kind_names,
)

__all__ = [
    "Fabric",
    "FabricExecutionError",
    "FabricTask",
    "ProcessFabric",
    "RemoteFabric",
    "RemoteTaskError",
    "SerialFabric",
    "TaskKind",
    "decode_result",
    "decode_task",
    "encode_result",
    "encode_task",
    "preferred_start_method",
    "register_task_kind",
    "run_task",
    "task_kind",
    "task_kind_names",
]

_LAZY = {"RemoteFabric", "RemoteTaskError"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import remote

        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LAZY)
