"""The fabric interface and its in-process backends.

A :class:`Fabric` executes a batch of :class:`FabricTask` values —
pure-function work units from the registry in :mod:`repro.fabric.tasks`
— and returns their results **in task order**, regardless of where or in
what order they actually ran.  That ordering guarantee, together with
the task purity the registry demands, is what lets every caller treat
backends as interchangeable: the planner in :mod:`repro.parallel` keeps
its determinism contract (bit-identical reports at any shard count on
any backend) without knowing whether a task ran inline, in a local
process pool, or on a remote host.

Backends
--------
:class:`SerialFabric`
    Runs tasks inline, one after another.  The bit-identical reference
    every other backend is measured against — and the cheapest backend
    when the batch is small.
:class:`ProcessFabric`
    A ``ProcessPoolExecutor`` fan-out (the pool logic that used to live
    inside ``repro.parallel.ParallelEvaluator``).  One task maps to one
    pool future; a broken pool is torn down and lazily rebuilt.
:class:`~repro.fabric.remote.RemoteFabric`
    Ships tasks as JSON to ``POST /tasks`` on service workers
    (:mod:`repro.fabric.remote`; wire format in
    :mod:`repro.fabric.tasks`).

Failure discipline
------------------
:meth:`Fabric.map_outcomes` retries each failed task up to
``max_retries`` times (0 for the in-process backends: their failures
are deterministic, so a retry would fail identically) and reports
per-task outcomes; :meth:`Fabric.map` turns any surviving failure into
one :class:`FabricExecutionError` with the first task's exception
chained.  Infrastructure failures that no retry policy can answer — a
remote fleet with no reachable worker left — raise
:class:`FabricExecutionError` directly.

Every backend emits ``fabric_*`` obs metrics and a ``fabric.map`` span
per batch (see docs/OBSERVABILITY.md); docs/FABRIC.md is the full
reference.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Registry, get_registry, maybe_tracer

__all__ = [
    "Fabric",
    "FabricExecutionError",
    "FabricTask",
    "ProcessFabric",
    "SerialFabric",
    "preferred_start_method",
]


class FabricExecutionError(RuntimeError):
    """A task batch could not be completed.

    Raised by :meth:`Fabric.map` when a task still fails after its
    bounded retries (the offending exception is chained), and by
    backends directly on unrecoverable infrastructure failures (e.g. a
    remote fleet with every worker unreachable).
    """


def preferred_start_method() -> str:
    """The multiprocessing start method :class:`ProcessFabric` defaults to.

    ``fork`` when the platform offers it (cheap, inherits the warm code
    and caches), ``spawn`` otherwise.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class FabricTask:
    """One unit of fabric work: a registered kind plus its payload.

    ``kind`` names an entry in the :mod:`repro.fabric.tasks` registry;
    ``payload`` is the kind's input document — plain JSON-able data
    (dicts, lists, tuples, ints, strings, bools), so the same task can
    cross a pickling boundary (:class:`ProcessFabric`) or the JSON wire
    (:class:`~repro.fabric.remote.RemoteFabric`) unchanged.  The kind's
    ``run`` function must be a pure function of the payload: that is
    the whole basis of the backend-interchangeability contract.
    """

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ValueError(f"task kind must be a non-empty string, "
                             f"got {self.kind!r}")


#: One task's outcome inside a round: (task index, ok, result-or-exception).
_RoundOutcome = Tuple[int, bool, object]


class Fabric:
    """Base class: the retry loop, ordering guarantee and obs plumbing.

    Subclasses implement :meth:`_run_round` — execute an indexed batch
    any way they like, reporting one outcome per task — and inherit
    deterministic reassembly, bounded per-task retry and the metrics.

    Parameters
    ----------
    max_retries:
        Re-executions granted to a failing task before it is given up
        on.  In-process backends default to 0 (their task failures are
        deterministic); the remote backend defaults higher because a
        failure there may be a lost shard.
    shards:
        Optional fixed shard-count hint for planners (see
        :meth:`shard_count`); ``None`` lets the planner derive one from
        :attr:`parallelism`.
    tracer / registry:
        Obs sinks (``fabric.map`` spans; ``fabric_*`` metrics).
        Defaults: null tracer, process-wide registry.
    """

    #: Backend label, used in metrics/spans and error messages.
    name = "fabric"
    #: How many tasks the backend can genuinely run at once.
    parallelism = 1

    def __init__(
        self,
        max_retries: int = 0,
        shards: Optional[int] = None,
        tracer=None,
        registry: Optional[Registry] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.max_retries = max_retries
        self.shards = shards
        self.tracer = maybe_tracer(tracer)
        self.registry = registry if registry is not None else get_registry()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release backend resources (idempotent; base: nothing to do)."""

    def __enter__(self) -> "Fabric":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # planning hint
    # ------------------------------------------------------------------ #

    def shard_count(self, n_items: int, chunk_factor: int = 4) -> int:
        """How many shards a planner should split *n_items* into.

        A fixed :attr:`shards` wins when set (the fuzz oracle pins shard
        counts with it); otherwise ``parallelism * chunk_factor``,
        bounded by the item count — the same oversharding heuristic the
        process pool always used to smooth load imbalance.
        """
        if n_items <= 0:
            return 0
        wanted = self.shards or max(1, self.parallelism * chunk_factor)
        return min(n_items, wanted)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _run_round(
        self, batch: Sequence[Tuple[int, FabricTask]]
    ) -> List[_RoundOutcome]:
        """Execute one indexed batch; one outcome per task, any order."""
        raise NotImplementedError

    def map_outcomes(
        self, tasks: Sequence[FabricTask]
    ) -> List[Tuple[bool, object]]:
        """Run *tasks*, retrying failures; per-task ``(ok, value)`` rows.

        The returned list is in task order.  ``value`` is the task's
        result when ``ok``, else the exception of its final attempt.
        Unlike :meth:`map`, a failed task does not poison the batch —
        the service's task endpoint uses this to report per-task errors
        so the *caller's* retry policy stays in charge.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        registry = self.registry
        registry.inc("fabric_tasks_total", len(tasks))
        hist = self.registry.get_histogram(
            "fabric_map_seconds",
            "wall clock of one fabric task batch (retries included)")
        start = time.perf_counter()
        results: List[Tuple[bool, object]] = [(False, None)] * len(tasks)
        pending = list(range(len(tasks)))
        with self.tracer.span("fabric.map", backend=self.name,
                              tasks=len(tasks)) as span:
            attempt = 0
            while True:
                outcomes = self._run_round(
                    [(i, tasks[i]) for i in pending])
                failed: List[int] = []
                for i, ok, value in outcomes:
                    results[i] = (ok, value)
                    if not ok:
                        failed.append(i)
                if not failed or attempt >= self.max_retries:
                    break
                attempt += 1
                failed.sort()
                registry.inc("fabric_task_retries_total", len(failed))
                pending = failed
            span.annotate(retries=attempt,
                          failed=sum(1 for ok, _ in results if not ok))
        if any(not ok for ok, _ in results):
            registry.inc("fabric_failed_tasks_total",
                         sum(1 for ok, _ in results if not ok))
        hist.observe(time.perf_counter() - start)
        return results

    def map(self, tasks: Sequence[FabricTask]) -> List[object]:
        """Run *tasks* and return their results in task order.

        Any task still failing after its bounded retries raises one
        :class:`FabricExecutionError` chaining that task's exception.
        """
        outcomes = self.map_outcomes(tasks)
        failures = [(i, value) for i, (ok, value) in enumerate(outcomes)
                    if not ok]
        if failures:
            index, exc = failures[0]
            cause = exc if isinstance(exc, BaseException) else None
            raise FabricExecutionError(
                f"{len(failures)} of {len(outcomes)} task(s) failed on the "
                f"{self.name} fabric after {self.max_retries} retr"
                f"{'y' if self.max_retries == 1 else 'ies'} "
                f"(first: task {index}: {exc})"
            ) from cause
        return [value for _, value in outcomes]


class SerialFabric(Fabric):
    """Inline execution, one task after another — the reference backend.

    Bit-identical to every other backend by definition of the task
    contract, and the fastest choice when batches are small enough that
    fan-out overhead would dominate.
    """

    name = "serial"
    parallelism = 1

    def _run_round(
        self, batch: Sequence[Tuple[int, FabricTask]]
    ) -> List[_RoundOutcome]:
        from .tasks import run_task

        outcomes: List[_RoundOutcome] = []
        for index, task in batch:
            try:
                outcomes.append((index, True, run_task(task)))
            except Exception as exc:  # noqa: BLE001 — per-task reporting
                outcomes.append((index, False, exc))
        return outcomes


class ProcessFabric(Fabric):
    """A local process pool: one task per pool future.

    This backend absorbs the executor logic that used to live inside
    ``repro.parallel.ParallelEvaluator``: lazy pool creation, the
    preferred start method, deterministic submission order, and the
    tear-it-down-on-failure discipline (a broken pool is closed so the
    next batch starts from a clean one).

    Thread-safe: the service's task endpoint shares one instance across
    handler threads (``ProcessPoolExecutor.submit`` is thread-safe; the
    pool create/teardown path is lock-guarded).
    """

    name = "process"

    def __init__(
        self,
        jobs: int,
        start_method: Optional[str] = None,
        max_retries: int = 0,
        shards: Optional[int] = None,
        tracer=None,
        registry: Optional[Registry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        super().__init__(max_retries=max_retries, shards=shards,
                         tracer=tracer, registry=registry)
        self.jobs = jobs
        self.parallelism = jobs
        self.start_method = start_method or preferred_start_method()
        self._executor: Optional[ProcessPoolExecutor] = None
        import threading

        self._pool_lock = threading.Lock()

    def _pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context(
                        self.start_method),
                )
            return self._executor

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        with self._pool_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def _run_round(
        self, batch: Sequence[Tuple[int, FabricTask]]
    ) -> List[_RoundOutcome]:
        from .tasks import run_task

        dispatch = self.registry.get_histogram(
            "fabric_task_seconds",
            "submit-to-done latency of one fabric task (queue + compute)")
        submitted = time.perf_counter()

        def _observe_done(_future: Future) -> None:
            # Runs on a pool thread as each task finishes; the registry
            # is thread-safe.
            dispatch.observe(time.perf_counter() - submitted)

        futures: List[Tuple[int, Future]] = []
        try:
            for index, task in batch:
                future = self._pool().submit(run_task, task)
                future.add_done_callback(_observe_done)
                futures.append((index, future))
        except Exception as exc:  # pool is broken before/while submitting
            for _index, future in futures:
                future.cancel()
            self.close()
            raise FabricExecutionError(
                f"the {self.name} fabric could not submit tasks "
                f"({self.jobs} job(s)): {exc}"
            ) from exc
        outcomes: List[_RoundOutcome] = []
        broken = False
        for index, future in futures:
            try:
                outcomes.append((index, True, future.result()))
            except Exception as exc:  # noqa: BLE001 — per-task reporting
                outcomes.append((index, False, exc))
                # A hard-killed worker breaks the whole pool; tear it
                # down so any retry (or the next batch) gets a fresh one.
                from concurrent.futures.process import BrokenProcessPool

                if isinstance(exc, BrokenProcessPool):
                    broken = True
        if broken:
            self.close()
        return outcomes
