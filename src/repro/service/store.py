"""File-backed artifact store: specs, checkpoints, events, reports.

One directory per job, addressed by the spec's content hash::

    <root>/jobs/<job_id>/
        spec.json                  the JobSpec (write-once)
        status.json                state machine record (atomic replace)
        events.jsonl               append-only progress event log
        heartbeat.json             worker liveness timestamp
        checkpoints/pass_NNNN.json pass-boundary resume points
        report.json                final report + result netlist

Durability discipline (:mod:`repro.persist`): every JSON document is
written to a temp file in the same directory, fsynced, and
``os.replace``d into place (with a directory fsync after), so readers
never see a torn document — across
process *and* system crashes — and a crashed worker leaves at worst a
stale ``.tmp``.  The event log is the one append-only file (fsynced per
event); the store serializes appends per process with a lock, and the
supervisor/worker protocol guarantees the two processes never append
concurrently (the supervisor only writes while the worker is not
running, and waits out a live orphan heartbeat before launching).

States: ``queued -> running -> succeeded | failed`` with
``running -> queued`` on a retryable worker death.  See docs/SERVICE.md
for the full lifecycle.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional

from ..persist import atomic_write_text as _atomic_write
from ..persist import fsync_dir as _fsync_dir  # noqa: F401  (re-export)
from ..resynth.procedures import PassCheckpoint, ResynthesisReport
from ..resynth.serialize import (
    checkpoint_from_doc,
    checkpoint_to_doc,
    report_from_doc,
    report_to_doc,
)
from .jobspec import JobSpec, spec_from_doc

#: Legal job states (the store validates transitions are at least names).
JOB_STATES = ("queued", "running", "succeeded", "failed")

#: States a job cannot leave.
TERMINAL_STATES = ("succeeded", "failed")


class StoreError(RuntimeError):
    """Malformed store contents or an unknown job id."""


class ArtifactStore:
    """Directory-per-job persistence for the resynthesis service."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self._jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self._jobs_dir, exist_ok=True)
        self._event_lock = threading.Lock()
        #: Optional in-process observers.  ``on_status(job_id, record)``
        #: fires after every status replace (the SQLite job index hooks
        #: here so listings never rescan the filesystem);
        #: ``on_event(job_id, seq)`` fires after every in-process event
        #: append (the async front end's broker hooks here to wake
        #: long-pollers without polling).  Worker subprocesses write to
        #: the same files without these hooks — observers that need their
        #: events must also watch the files.
        self.on_status: Optional[Callable[[str, Dict[str, object]], None]] \
            = None
        self.on_event: Optional[Callable[[str, int], None]] = None

    # -- paths ---------------------------------------------------------- #

    def job_dir(self, job_id: str) -> str:
        """The job's directory (no existence check)."""
        if not job_id or "/" in job_id or os.sep in job_id or ".." in job_id:
            raise StoreError(f"illegal job id {job_id!r}")
        return os.path.join(self._jobs_dir, job_id)

    def _path(self, job_id: str, *names: str) -> str:
        return os.path.join(self.job_dir(job_id), *names)

    def has_job(self, job_id: str) -> bool:
        """True when a job with this id has been created."""
        try:
            return os.path.exists(self._path(job_id, "spec.json"))
        except StoreError:
            return False

    def job_ids(self) -> List[str]:
        """All job ids in the store, sorted for stable listings."""
        if not os.path.isdir(self._jobs_dir):
            return []
        return sorted(
            d for d in os.listdir(self._jobs_dir)
            if os.path.exists(os.path.join(self._jobs_dir, d, "spec.json"))
        )

    # -- job creation / spec -------------------------------------------- #

    def create_job(self, spec: JobSpec,
                   tenant: Optional[str] = None) -> tuple:
        """Persist *spec*; returns ``(job_id, created)``.

        Content-addressing makes this idempotent: an identical spec maps
        to the existing job (with whatever state and checkpoints it has)
        and ``created`` is False.  *tenant* (the submitting tenant's
        name) is recorded in the status record of newly created jobs.
        """
        job_id = spec.job_id
        if self.has_job(job_id):
            return job_id, False
        job_dir = self.job_dir(job_id)
        os.makedirs(os.path.join(job_dir, "checkpoints"), exist_ok=True)
        _atomic_write(self._path(job_id, "spec.json"), spec.to_json())
        if tenant is not None:
            self.set_status(job_id, "queued", attempts=0, tenant=tenant)
        else:
            self.set_status(job_id, "queued", attempts=0)
        return job_id, True

    def load_spec(self, job_id: str) -> JobSpec:
        """The job's spec (raises :class:`StoreError` on unknown ids)."""
        path = self._path(job_id, "spec.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return spec_from_doc(json.load(fh))
        except FileNotFoundError:
            raise StoreError(f"unknown job {job_id!r}") from None

    # -- status --------------------------------------------------------- #

    def status(self, job_id: str) -> Dict[str, object]:
        """The job's status record."""
        path = self._path(job_id, "status.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            raise StoreError(f"unknown job {job_id!r}") from None

    def set_status(self, job_id: str, state: str, **fields: object) -> None:
        """Atomically replace the status record.

        Unspecified bookkeeping fields (``attempts``, ``created``,
        ``tenant``) carry over from the previous record;
        ``error``/``traceback`` do not — a fresh attempt starts clean.
        """
        if state not in JOB_STATES:
            raise StoreError(f"unknown state {state!r}")
        now = time.time()
        try:
            prev = self.status(job_id)
        except StoreError:
            prev = {"created": now, "attempts": 0}
        record: Dict[str, object] = {
            "state": state,
            "created": prev.get("created", now),
            "updated": now,
            "attempts": fields.pop("attempts", prev.get("attempts", 0)),
        }
        if "tenant" not in fields and prev.get("tenant") is not None:
            record["tenant"] = prev["tenant"]
        record.update(fields)
        _atomic_write(self._path(job_id, "status.json"),
                      json.dumps(record, indent=1, sort_keys=True))
        if self.on_status is not None:
            self.on_status(job_id, record)

    # -- events --------------------------------------------------------- #

    def append_event(self, job_id: str, etype: str,
                     **payload: object) -> int:
        """Append one event; returns its sequence number (1-based)."""
        path = self._path(job_id, "events.jsonl")
        with self._event_lock:
            seq = self._last_seq(path) + 1
            event = {"seq": seq, "ts": time.time(), "type": etype}
            event.update(payload)
            line = json.dumps(event, sort_keys=True)
            with open(path, "a+b") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                torn = False
                if size > 0:
                    fh.seek(size - 1)
                    torn = fh.read(1) != b"\n"
                # A crash mid-append can leave a torn final line; start
                # this event on its own line so the log stays parseable
                # (readers skip the torn fragment).
                prefix = "\n" if torn else ""
                fh.write((prefix + line + "\n").encode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
        if self.on_event is not None:
            self.on_event(job_id, seq)
        return seq

    @staticmethod
    def _last_seq(path: str) -> int:
        """Sequence number of the log's last event, reading only the
        file tail — appends stay O(last line), not O(log).  A full scan
        would also re-read the whole log with fsync already in the
        critical section; the tail read keeps long jobs' per-event cost
        flat and stays correct across the supervisor/worker process
        hand-off (no in-memory counter to go stale)."""
        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            return 0
        with fh:
            fh.seek(0, os.SEEK_END)
            pos = fh.tell()
            buf = b""
            while pos > 0:
                step = min(4096, pos)
                pos -= step
                fh.seek(pos)
                buf = fh.read(step) + buf
                tail = buf.rstrip()
                if not tail:
                    continue  # trailing whitespace only so far
                newline = tail.rfind(b"\n")
                if newline == -1 and pos > 0:
                    continue  # last line extends beyond what we read
                try:
                    return json.loads(tail[newline + 1:])["seq"]
                except (ValueError, KeyError):
                    break  # torn tail line: fall back to a full scan
            fh.seek(0)
            seq = 0
            for line in fh:
                if not line.strip():
                    continue
                try:
                    seq = json.loads(line)["seq"]
                except (ValueError, KeyError):
                    continue
            return seq

    def events(self, job_id: str, after: int = 0) -> List[Dict[str, object]]:
        """Events with ``seq > after`` in order (empty list when none)."""
        if not self.has_job(job_id):
            raise StoreError(f"unknown job {job_id!r}")
        path = self._path(job_id, "events.jsonl")
        out: List[Dict[str, object]] = []
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue  # torn line from a crash mid-append
                    if event["seq"] > after:
                        out.append(event)
        except FileNotFoundError:
            pass
        return out

    # -- heartbeat ------------------------------------------------------ #

    def heartbeat(self, job_id: str) -> None:
        """Record worker liveness now."""
        _atomic_write(self._path(job_id, "heartbeat.json"),
                      json.dumps({"ts": time.time()}))

    def last_heartbeat(self, job_id: str) -> Optional[float]:
        """Timestamp of the last heartbeat (None when never beaten)."""
        try:
            with open(self._path(job_id, "heartbeat.json"),
                      "r", encoding="utf-8") as fh:
                return json.load(fh)["ts"]
        except (FileNotFoundError, KeyError, ValueError):
            return None

    def clear_heartbeat(self, job_id: str) -> None:
        """Forget the previous worker's beat so a fresh attempt is not
        judged against a stale timestamp."""
        try:
            os.unlink(self._path(job_id, "heartbeat.json"))
        except FileNotFoundError:
            pass

    # -- checkpoints ---------------------------------------------------- #

    def write_checkpoint(self, job_id: str, ckpt: PassCheckpoint) -> int:
        """Persist a pass checkpoint; returns the bytes written."""
        directory = self._path(job_id, "checkpoints")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"pass_{ckpt.pass_no:04d}.json")
        doc = checkpoint_to_doc(ckpt)
        return _atomic_write(path, json.dumps(doc, indent=1, sort_keys=True))

    def checkpoint_passes(self, job_id: str) -> List[int]:
        """Pass numbers with a stored checkpoint, ascending."""
        directory = self._path(job_id, "checkpoints")
        if not os.path.isdir(directory):
            return []
        passes = []
        for name in os.listdir(directory):
            if name.startswith("pass_") and name.endswith(".json"):
                try:
                    passes.append(int(name[5:-5]))
                except ValueError:
                    continue
        return sorted(passes)

    def load_checkpoint(self, job_id: str,
                        pass_no: int) -> PassCheckpoint:
        """Load one stored checkpoint."""
        path = self._path(job_id, "checkpoints", f"pass_{pass_no:04d}.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return checkpoint_from_doc(json.load(fh))
        except FileNotFoundError:
            raise StoreError(
                f"job {job_id!r} has no checkpoint for pass {pass_no}"
            ) from None

    def latest_checkpoint(self, job_id: str) -> Optional[PassCheckpoint]:
        """The most recent checkpoint, or None for a fresh job."""
        passes = self.checkpoint_passes(job_id)
        if not passes:
            return None
        return self.load_checkpoint(job_id, passes[-1])

    # -- report --------------------------------------------------------- #

    def write_report(self, job_id: str, report: ResynthesisReport) -> int:
        """Persist the final report (result netlist embedded)."""
        doc = report_to_doc(report)
        return _atomic_write(self._path(job_id, "report.json"),
                             json.dumps(doc, indent=1, sort_keys=True))

    def load_report(self, job_id: str) -> Optional[ResynthesisReport]:
        """The final report, or None while the job is still running."""
        try:
            with open(self._path(job_id, "report.json"),
                      "r", encoding="utf-8") as fh:
                return report_from_doc(json.load(fh))
        except FileNotFoundError:
            return None

    def load_report_doc(self, job_id: str) -> Optional[Dict[str, object]]:
        """The raw report document (what the HTTP API serves)."""
        try:
            with open(self._path(job_id, "report.json"),
                      "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    # -- worker error hand-off ------------------------------------------ #

    def write_worker_error(self, job_id: str, message: str,
                           traceback_text: str) -> None:
        """Record the worker's crash context for the supervisor."""
        _atomic_write(self._path(job_id, "error.json"), json.dumps(
            {"message": message, "traceback": traceback_text},
            indent=1,
        ))

    def read_worker_error(self, job_id: str) -> Optional[Dict[str, str]]:
        """The worker's last crash record, if any."""
        try:
            with open(self._path(job_id, "error.json"),
                      "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def clear_worker_error(self, job_id: str) -> None:
        """Drop a stale crash record before a fresh attempt."""
        try:
            os.unlink(self._path(job_id, "error.json"))
        except FileNotFoundError:
            pass
