"""Multi-tenancy: API keys, admission quotas, scheduling priorities.

A **tenant** is one consumer of the service — a team, a sweep driver, a
CI pipeline — identified by an API key and carrying two policies:

* ``max_active`` — how many of its jobs may be queued-or-running at
  once.  The quota is what keeps one tenant's thousand-job sweep from
  starving everyone else's single submit; beyond it the front end
  answers ``429`` with a ``Retry-After`` hint instead of admitting.
* ``priority`` — scheduler weight.  The admission queue is a priority
  queue; among queued jobs the highest tenant priority launches first
  (FIFO within a priority level).

Configuration is one JSON document (``serve --tenants FILE``)::

    {"tenants": [
        {"name": "sweeps", "key": "s3cr3t-a", "max_active": 8,
         "priority": 0},
        {"name": "interactive", "key": "s3cr3t-b", "priority": 10}
    ]}

``max_active`` omitted or 0 means unlimited; ``priority`` defaults to 0
(higher runs sooner).  When no tenants file is configured the service
runs **open**: every request maps to the anonymous
:data:`PUBLIC_TENANT` with no quota — exactly the pre-tenancy behaviour,
so single-user deployments need no keys.  When a tenants file *is*
configured, submission routes require a valid key (``Authorization:
Bearer <key>`` or ``X-API-Key: <key>``) and answer ``401`` otherwise;
read-only routes stay open (bind to localhost or front with TLS for
secrecy — see docs/OPERATIONS.md).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "AuthError",
    "BackpressureError",
    "PUBLIC_TENANT",
    "Tenant",
    "TenantRegistry",
]


class AuthError(Exception):
    """Missing or unknown API key (HTTP 401 material)."""


class BackpressureError(Exception):
    """Admission refused — queue full or tenant over quota (HTTP 429).

    Carries ``retry_after`` (seconds, integer) for the ``Retry-After``
    header so well-behaved clients back off instead of hammering.
    """

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


@dataclass(frozen=True)
class Tenant:
    """One configured consumer of the service."""

    name: str
    key: Optional[str] = None  # None only for the anonymous tenant
    max_active: int = 0  # queued+running cap; 0 = unlimited
    priority: int = 0  # higher launches sooner

    @property
    def metric_suffix(self) -> str:
        """The tenant's name as a metric-name-safe suffix."""
        return re.sub(r"[^A-Za-z0-9_]", "_", self.name)


#: The anonymous tenant used when no tenants file is configured: open
#: access, no quota, neutral priority — the pre-tenancy behaviour.
PUBLIC_TENANT = Tenant(name="public")


class TenantRegistry:
    """Key -> :class:`Tenant` resolution plus the auth policy switch."""

    def __init__(self, tenants: Optional[List[Tenant]] = None) -> None:
        self._by_key: Dict[str, Tenant] = {}
        self._by_name: Dict[str, Tenant] = {}
        for tenant in tenants or []:
            if not tenant.name:
                raise ValueError("tenant name must be non-empty")
            if tenant.name in self._by_name:
                raise ValueError(f"duplicate tenant name {tenant.name!r}")
            if not tenant.key:
                raise ValueError(
                    f"tenant {tenant.name!r} has no API key")
            if tenant.key in self._by_key:
                raise ValueError(
                    f"duplicate API key (tenant {tenant.name!r})")
            self._by_key[tenant.key] = tenant
            self._by_name[tenant.name] = tenant

    @property
    def auth_required(self) -> bool:
        """True when at least one tenant (hence key auth) is configured."""
        return bool(self._by_key)

    def tenants(self) -> List[Tenant]:
        """Configured tenants, name-sorted."""
        return [self._by_name[k] for k in sorted(self._by_name)]

    def resolve(self, api_key: Optional[str]) -> Tenant:
        """The tenant for *api_key*; raises :class:`AuthError` when auth
        is on and the key is missing or unknown."""
        if not self.auth_required:
            return PUBLIC_TENANT
        if not api_key:
            raise AuthError("missing API key (Authorization: Bearer <key> "
                            "or X-API-Key header)")
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise AuthError("unknown API key")
        return tenant

    def get(self, name: Optional[str]) -> Tenant:
        """The tenant named *name* (falls back to the anonymous tenant
        for unknown or absent names — used when re-admitting recovered
        jobs whose tenant has since been removed from the config)."""
        if name is None:
            return PUBLIC_TENANT
        return self._by_name.get(name, PUBLIC_TENANT)

    @classmethod
    def from_doc(cls, doc: object) -> "TenantRegistry":
        """Build from a parsed tenants document (see module docstring)."""
        if not isinstance(doc, dict) or not isinstance(
                doc.get("tenants"), list):
            raise ValueError("tenants document must be "
                             "{'tenants': [...]}")
        tenants = []
        for i, row in enumerate(doc["tenants"]):
            if not isinstance(row, dict):
                raise ValueError(f"tenant #{i} must be an object")
            unknown = sorted(set(row) - {"name", "key", "max_active",
                                         "priority"})
            if unknown:
                raise ValueError(
                    f"tenant #{i}: unknown field(s) {', '.join(unknown)}")
            name = row.get("name")
            key = row.get("key")
            if not isinstance(name, str) or not name:
                raise ValueError(f"tenant #{i}: 'name' must be a "
                                 f"non-empty string")
            if not isinstance(key, str) or not key:
                raise ValueError(f"tenant {name!r}: 'key' must be a "
                                 f"non-empty string")
            max_active = row.get("max_active", 0)
            priority = row.get("priority", 0)
            for field, value in (("max_active", max_active),
                                 ("priority", priority)):
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValueError(
                        f"tenant {name!r}: {field!r} must be an integer")
            if max_active < 0:
                raise ValueError(
                    f"tenant {name!r}: 'max_active' must be >= 0")
            tenants.append(Tenant(name=name, key=key,
                                  max_active=max_active,
                                  priority=priority))
        return cls(tenants)

    @classmethod
    def from_file(cls, path: str) -> "TenantRegistry":
        """Load and validate a tenants JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"tenants file {path} is not valid JSON: {exc}"
                ) from None
        return cls.from_doc(doc)
