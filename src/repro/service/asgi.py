"""The asyncio front end: ASGI application + the default ServiceServer.

This is the multi-tenant, connection-cheap HTTP face of
:class:`~repro.service.api.ResynthesisService` — versioned API ``v1``
(every response carries ``X-Repro-Api-Version``).  Routes::

    POST /jobs                   submit one spec (201/200; 401/413/429)
    POST /jobs/batch             submit many specs atomically
    GET  /jobs                   listing from the SQLite index
                                 (?state= &tenant= &limit= &offset=)
    GET  /jobs/summary           per-tenant x per-state counts
    GET  /jobs/<id>              status + spec + progress
    GET  /jobs/<id>/events       event log; ?after=N&wait=S long-polls
    GET  /jobs/<id>/events/stream  Server-Sent Events tail of the log
    GET  /jobs/<id>/report       final report (netlist embedded)
    GET  /jobs/<id>/result       result netlist document only
    POST /sweeps                 submit a sweep grid (docs/SWEEP.md)
    GET  /sweeps                 sweep listing
    GET  /sweeps/<id>            sweep state + per-cell state counts
    GET  /sweeps/<id>/events     sweep event log (long-poll like jobs')
    GET  /sweeps/<id>/events/stream  SSE tail of the sweep log
    GET  /sweeps/<id>/report     aggregate report + Pareto front
    GET  /metrics                JSON or Prometheus (Accept-negotiated)
    GET  /version                API + service version document
    POST /tasks                  fabric task execution (docs/FABRIC.md)
    GET/PUT /memo/<id>           shared identification memo (docs/MEMO.md)

Error bodies are always ``{"error": "..."}``; 429 responses add a
``Retry-After`` header.  The full reference table lives in
docs/SERVICE.md; deployment guidance in docs/OPERATIONS.md.

Design notes
------------
*Long-poll and SSE are event-driven, not sleep-polled.*  The
:class:`EventBroker` holds one ``asyncio.Condition`` per job **with
waiters**; in-process event appends wake it through the store's
``on_event`` hook, and a single watcher task stats the ``events.jsonl``
of watched jobs (worker subprocesses append there directly) every
``poll_interval``.  Cost scales with jobs-being-watched, not with
connections — ten thousand streams over one hot job are one file stat
per tick.

*Blocking work leaves the loop.*  Store reads, SQLite queries and
``/tasks`` execution run on the loop's default thread-pool executor via
``asyncio.to_thread``; the event loop itself only parses HTTP, routes,
and waits.

*Determinism is untouched.*  The front end only admits, observes and
serves artifacts; job execution is the same supervisor/worker path as
the threaded front end, so reports are bit-identical across front ends
(``tests/service/test_frontends.py``, ``scripts/service_smoke.py``).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from ..obs import PROMETHEUS_CONTENT_TYPE, render_prometheus
from .api import (
    MAX_EVENT_WAIT,
    ResynthesisService,
    _accepts_prometheus,
)
from .jobspec import JobSpecError, spec_from_doc
from .store import ArtifactStore, StoreError, TERMINAL_STATES
from .supervisor import SupervisorConfig
from .tenants import AuthError, BackpressureError, TenantRegistry

__all__ = ["API_VERSION", "EventBroker", "ServiceApp", "ServiceServer"]

#: The HTTP API version (``X-Repro-Api-Version`` on every response;
#: also served by ``GET /version``).  Bumped on breaking route or
#: document-shape changes — see the versioning policy in docs/SERVICE.md.
API_VERSION = "1"

#: SSE comment-ping period: keeps intermediaries from timing the stream
#: out and doubles as the server's disconnect probe (a write to a gone
#: client raises, ending the stream task).
SSE_KEEPALIVE_SECONDS = 15.0


class _HTTPAnswer(Exception):
    """Early-exit control flow: answer *status* with ``{"error": ...}``."""

    def __init__(self, status: int, message: str,
                 headers: Optional[List[Tuple[bytes, bytes]]] = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or []


class EventBroker:
    """Wakes event watchers when a watched ``events.jsonl`` grows.

    Two wake sources, one per writer kind: the store's ``on_event``
    hook covers in-process appends (submit/attempt/state records from
    the scheduler and supervisors), and a polling watcher task covers
    worker-subprocess appends (pass/checkpoint/completed records).  The
    watcher only stats jobs that currently have waiters.

    Channels are opaque keys.  Bare job ids resolve to the store's
    per-job log; *path_for* lets other log owners join the same broker
    (the sweep coordinator registers ``sweep:<id>`` channels this way).
    """

    def __init__(self, store: ArtifactStore,
                 poll_interval: float = 0.05,
                 path_for=None) -> None:
        self._store = store
        self._path_for = path_for or (
            lambda key: store._path(key, "events.jsonl"))
        self.poll_interval = poll_interval
        self._conds: Dict[str, asyncio.Condition] = {}
        self._waiters: Dict[str, int] = {}
        self._sizes: Dict[str, int] = {}
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        """Start the watcher task (call on the serving loop)."""
        if self._task is None:
            self._task = asyncio.get_event_loop().create_task(
                self._watch_loop())

    async def stop(self) -> None:
        """Cancel the watcher task."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def watched_jobs(self) -> List[str]:
        """Jobs with at least one live waiter (tests and gauges)."""
        return sorted(self._waiters)

    def poke(self, job_id: str) -> None:
        """Wake *job_id*'s waiters now (loop-thread only; the store hook
        gets here via ``call_soon_threadsafe``)."""
        cond = self._conds.get(job_id)
        if cond is not None:
            asyncio.ensure_future(self._notify(cond))

    async def _notify(self, cond: asyncio.Condition) -> None:
        async with cond:
            cond.notify_all()

    def _events_size(self, job_id: str) -> int:
        import os

        try:
            return os.path.getsize(self._path_for(job_id))
        except (OSError, StoreError):
            return 0

    async def _watch_loop(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval)
            for job_id in list(self._waiters):
                size = self._events_size(job_id)
                if size != self._sizes.get(job_id):
                    self._sizes[job_id] = size
                    cond = self._conds.get(job_id)
                    if cond is not None:
                        async with cond:
                            cond.notify_all()

    async def wait(self, job_id: str, timeout: float) -> bool:
        """Wait for a change signal on *job_id*; False on timeout.

        Spurious wakeups are fine — every caller re-reads the log.
        """
        cond = self._conds.get(job_id)
        if cond is None:
            cond = self._conds[job_id] = asyncio.Condition()
            self._sizes[job_id] = self._events_size(job_id)
        self._waiters[job_id] = self._waiters.get(job_id, 0) + 1
        try:
            async with cond:
                try:
                    await asyncio.wait_for(cond.wait(), timeout)
                    return True
                except asyncio.TimeoutError:
                    return False
        finally:
            left = self._waiters.get(job_id, 1) - 1
            if left <= 0:
                self._waiters.pop(job_id, None)
                self._conds.pop(job_id, None)
                self._sizes.pop(job_id, None)
            else:
                self._waiters[job_id] = left


class ServiceApp:
    """The ASGI 3 application over one :class:`ResynthesisService`."""

    def __init__(self, service: ResynthesisService,
                 verbose: bool = False,
                 sse_keepalive: float = SSE_KEEPALIVE_SECONDS) -> None:
        self.service = service
        self.verbose = verbose
        self.sse_keepalive = sse_keepalive

        def path_for(key: str) -> str:
            if key.startswith("sweep:"):
                return service.sweeps.events_path(key[len("sweep:"):])
            return service.store._path(key, "events.jsonl")

        self.broker = EventBroker(service.store, path_for=path_for)
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle (called by the hosting server on its loop) ----------- #

    def startup(self) -> None:
        """Hook the store's event observer and start the broker."""
        self._loop = asyncio.get_event_loop()
        self.broker.start()
        loop = self._loop

        def on_event(job_id: str, seq: int) -> None:
            loop.call_soon_threadsafe(self.broker.poke, job_id)

        def on_sweep_event(sweep_id: str, seq: int) -> None:
            loop.call_soon_threadsafe(self.broker.poke,
                                      "sweep:" + sweep_id)

        self.service.store.on_event = on_event
        self.service.sweeps.on_event = on_sweep_event

    async def shutdown(self) -> None:
        """Detach the observers and stop the broker."""
        self.service.store.on_event = None
        self.service.sweeps.on_event = None
        await self.broker.stop()

    # -- ASGI entry ------------------------------------------------------ #

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] != "http":  # pragma: no cover — http-only host
            raise RuntimeError("ServiceApp only speaks HTTP")
        metrics = self.service.metrics
        metrics.inc("service_http_requests_total")
        started = time.perf_counter()
        method = scope["method"]
        path = scope["path"].rstrip("/") or "/"
        query = parse_qs(scope["query_string"].decode("latin-1"))
        headers = {k.decode("latin-1"): v.decode("latin-1")
                   for k, v in scope.get("headers", [])}
        if self.verbose:
            print(f"[service] {method} {scope['path']}")
        try:
            body = await self._read_body(receive)
            await self._route(method, path, query, headers, body, send)
        except _HTTPAnswer as answer:
            metrics.inc("service_http_errors_total")
            if answer.status == 429:
                metrics.inc("service_http_backpressure_total")
            await self._send_json(send, answer.status,
                                  {"error": str(answer)},
                                  extra=answer.headers)
        except (ConnectionError, OSError):
            raise  # client went away mid-response: the host cleans up
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            metrics.inc("service_http_errors_total")
            await self._send_json(
                send, 500,
                {"error": f"internal error: {type(exc).__name__}: {exc}"})
        finally:
            metrics.observe("service_http_request_seconds",
                            time.perf_counter() - started)

    @staticmethod
    async def _read_body(receive) -> bytes:
        chunks = []
        while True:
            event = await receive()
            if event["type"] == "http.disconnect":
                raise ConnectionResetError("client disconnected")
            chunks.append(event.get("body", b"") or b"")
            if not event.get("more_body", False):
                break
        return b"".join(chunks)

    # -- routing --------------------------------------------------------- #

    async def _route(self, method, path, query, headers, body,
                     send) -> None:
        parts = [p for p in path.split("/") if p]
        if method == "POST" and parts == ["jobs"]:
            await self._submit(headers, body, send)
        elif method == "POST" and parts == ["jobs", "batch"]:
            await self._submit_batch(headers, body, send)
        elif method == "POST" and parts == ["sweeps"]:
            await self._submit_sweep(headers, body, send)
        elif method == "POST" and parts == ["tasks"]:
            await self._run_tasks(body, send)
        elif method == "PUT" and len(parts) == 2 and parts[0] == "memo":
            await self._put_memo(parts[1], body, send)
        elif method in ("GET", "HEAD"):
            await self._route_get(parts, query, headers, send)
        else:
            raise _HTTPAnswer(404, f"no such route: {method} {path}")

    async def _route_get(self, parts, query, headers, send) -> None:
        try:
            if parts == ["metrics"]:
                await self._metrics(headers, send)
            elif parts == ["version"]:
                await self._send_json(send, 200, {
                    "service": "repro-service",
                    "api_version": API_VERSION,
                })
            elif parts == ["jobs"]:
                await self._list_jobs(query, send)
            elif parts == ["jobs", "summary"]:
                summary = await asyncio.to_thread(
                    self.service.summary_view)
                await self._send_json(send, 200, summary)
            elif len(parts) == 2 and parts[0] == "jobs":
                view = await asyncio.to_thread(
                    self.service.job_view, parts[1])
                await self._send_json(send, 200, view)
            elif (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "events"):
                await self._events(parts[1], query, send)
            elif (len(parts) == 4 and parts[0] == "jobs"
                    and parts[2:] == ["events", "stream"]):
                await self._events_stream(parts[1], query, send)
            elif len(parts) == 3 and parts[0] == "jobs":
                await self._job_artifact(parts[1], parts[2], send)
            elif parts == ["sweeps"]:
                rows = await asyncio.to_thread(
                    self.service.sweeps.list_view)
                await self._send_json(send, 200, {"sweeps": rows})
            elif len(parts) == 2 and parts[0] == "sweeps":
                view = await asyncio.to_thread(
                    self.service.sweeps.sweep_view, parts[1])
                await self._send_json(send, 200, view)
            elif (len(parts) == 3 and parts[0] == "sweeps"
                    and parts[2] == "events"):
                await self._sweep_events(parts[1], query, send)
            elif (len(parts) == 4 and parts[0] == "sweeps"
                    and parts[2:] == ["events", "stream"]):
                await self._sweep_events_stream(parts[1], query, send)
            elif (len(parts) == 3 and parts[0] == "sweeps"
                    and parts[2] == "report"):
                await self._sweep_report(parts[1], send)
            elif len(parts) == 2 and parts[0] == "memo":
                await self._get_memo(parts[1], send)
            else:
                raise _HTTPAnswer(
                    404, "no such route: GET /" + "/".join(parts))
        except StoreError as exc:
            raise _HTTPAnswer(404, str(exc)) from None

    # -- auth ------------------------------------------------------------ #

    def _resolve_tenant(self, headers):
        # One stat per authenticated request: pick up edits to the
        # tenants file without a restart (rejected reloads keep the old
        # registry and log a warning — see maybe_reload_tenants).
        self.service.maybe_reload_tenants()
        key = headers.get("x-api-key")
        if key is None:
            auth = headers.get("authorization", "")
            if auth.lower().startswith("bearer "):
                key = auth[7:].strip()
        try:
            return self.service.tenants.resolve(key)
        except AuthError as exc:
            raise _HTTPAnswer(401, str(exc)) from None

    # -- submission ------------------------------------------------------ #

    def _parse_spec(self, doc):
        try:
            return spec_from_doc(doc)
        except (JobSpecError, ValueError) as exc:
            raise _HTTPAnswer(400, f"invalid job spec: {exc}") from None

    @staticmethod
    def _parse_body_json(body: bytes):
        try:
            return json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPAnswer(
                400, f"request body is not JSON: {exc}") from None

    def _backpressure(self, exc: BackpressureError) -> _HTTPAnswer:
        return _HTTPAnswer(
            429, str(exc),
            headers=[(b"Retry-After",
                      str(exc.retry_after).encode("latin-1"))])

    async def _submit(self, headers, body, send) -> None:
        tenant = self._resolve_tenant(headers)
        spec = self._parse_spec(self._parse_body_json(body))
        try:
            job_id, created = await asyncio.to_thread(
                self.service.submit, spec, tenant)
        except BackpressureError as exc:
            raise self._backpressure(exc) from None
        state = await asyncio.to_thread(
            lambda: self.service.store.status(job_id).get("state"))
        await self._send_json(send, 201 if created else 200, {
            "id": job_id, "state": state, "created": created,
        })

    async def _submit_batch(self, headers, body, send) -> None:
        tenant = self._resolve_tenant(headers)
        doc = self._parse_body_json(body)
        if not isinstance(doc, dict) or not isinstance(
                doc.get("specs"), list):
            raise _HTTPAnswer(400,
                              "request body is not {'specs': [...]}")
        if not doc["specs"]:
            raise _HTTPAnswer(400, "'specs' must not be empty")
        specs = []
        for i, spec_doc in enumerate(doc["specs"]):
            try:
                specs.append(spec_from_doc(spec_doc))
            except (JobSpecError, ValueError) as exc:
                raise _HTTPAnswer(
                    400, f"invalid job spec at index {i}: {exc}"
                ) from None
        try:
            rows = await asyncio.to_thread(
                self.service.submit_batch, specs, tenant)
        except BackpressureError as exc:
            raise self._backpressure(exc) from None
        status = 201 if any(r["created"] for r in rows) else 200
        await self._send_json(send, status, {"jobs": rows})

    async def _submit_sweep(self, headers, body, send) -> None:
        from ..sweep import SweepSpecError, sweep_from_doc

        tenant = self._resolve_tenant(headers)
        try:
            spec = sweep_from_doc(self._parse_body_json(body))
        except (SweepSpecError, ValueError) as exc:
            raise _HTTPAnswer(
                400, f"invalid sweep grid: {exc}") from None
        try:
            sweep_id, created = await asyncio.to_thread(
                self.service.sweeps.submit, spec, tenant)
        except BackpressureError as exc:
            raise self._backpressure(exc) from None
        view = await asyncio.to_thread(
            self.service.sweeps.sweep_view, sweep_id)
        await self._send_json(send, 201 if created else 200, {
            "id": sweep_id, "state": view["state"],
            "cells": view["cells"], "created": created,
        })

    # -- listings and views ---------------------------------------------- #

    @staticmethod
    def _query_int(query, name: str) -> Optional[int]:
        raw = query.get(name, [None])[0]
        if raw is None:
            return None
        try:
            value = int(raw)
            if value < 0:
                raise ValueError
            return value
        except ValueError:
            raise _HTTPAnswer(
                400, f"{name!r} must be a non-negative integer") from None

    async def _list_jobs(self, query, send) -> None:
        state = query.get("state", [None])[0]
        if state is not None and state not in (
                "queued", "running", "succeeded", "failed"):
            raise _HTTPAnswer(400, f"unknown state filter {state!r}")
        rows = await asyncio.to_thread(
            self.service.list_view,
            state,
            query.get("tenant", [None])[0],
            self._query_int(query, "limit"),
            self._query_int(query, "offset") or 0,
        )
        await self._send_json(send, 200, {"jobs": rows})

    async def _job_artifact(self, job_id: str, leaf: str, send) -> None:
        store = self.service.store
        if leaf not in ("report", "result"):
            raise StoreError(f"unknown job resource {leaf!r}")
        doc = await asyncio.to_thread(store.load_report_doc, job_id)
        if doc is None:
            has = await asyncio.to_thread(store.has_job, job_id)
            if not has:
                raise StoreError(f"unknown job {job_id!r}")
            state = (await asyncio.to_thread(store.status, job_id))["state"]
            noun = "report" if leaf == "report" else "result"
            raise _HTTPAnswer(
                404, f"job {job_id} has no {noun} yet (state: {state})")
        await self._send_json(
            send, 200, doc if leaf == "report" else doc["circuit"])

    async def _metrics(self, headers, send) -> None:
        registry = self.service.metrics
        if _accepts_prometheus(headers.get("accept")):
            body = render_prometheus(registry).encode("utf-8")
            await self._send_raw(send, 200, body,
                                 PROMETHEUS_CONTENT_TYPE)
        else:
            await self._send_json(send, 200, registry.snapshot())

    # -- events: long-poll and SSE --------------------------------------- #

    def _event_cursor(self, query) -> Tuple[int, float]:
        try:
            after = int(query.get("after", ["0"])[0])
            wait = min(float(query.get("wait", ["0"])[0]), MAX_EVENT_WAIT)
        except ValueError:
            raise _HTTPAnswer(
                400, "'after' must be an int, 'wait' a float") from None
        return after, wait

    async def _events(self, job_id: str, query, send) -> None:
        after, wait = self._event_cursor(query)
        store = self.service.store
        deadline = time.monotonic() + wait
        while True:
            events = await asyncio.to_thread(store.events, job_id, after)
            state = (await asyncio.to_thread(store.status, job_id)) \
                .get("state")
            remaining = deadline - time.monotonic()
            if events or state in TERMINAL_STATES or remaining <= 0:
                break
            await self.broker.wait(job_id, min(remaining, 1.0))
        next_after = events[-1]["seq"] if events else after
        await self._send_json(send, 200, {
            "events": events, "next_after": next_after, "state": state,
        })

    async def _events_stream(self, job_id: str, query, send) -> None:
        after, _ = self._event_cursor(query)
        store = self.service.store
        metrics = self.service.metrics
        # Existence check before committing to a stream (404 must be a
        # clean JSON answer, not a broken stream).
        if not await asyncio.to_thread(store.has_job, job_id):
            raise StoreError(f"unknown job {job_id!r}")
        await send({"type": "http.response.start", "status": 200,
                    "headers": [
                        (b"Content-Type", b"text/event-stream"),
                        (b"Cache-Control", b"no-cache"),
                        (b"X-Repro-Api-Version",
                         API_VERSION.encode("latin-1")),
                    ]})
        metrics.inc("service_event_streams_total")

        async def emit(chunk: str, more: bool = True) -> None:
            await send({"type": "http.response.body",
                        "body": chunk.encode("utf-8"), "more_body": more})

        while True:
            events = await asyncio.to_thread(store.events, job_id, after)
            for event in events:
                after = event["seq"]
                payload = json.dumps(event, sort_keys=True)
                await emit(f"id: {event['seq']}\n"
                           f"event: {event.get('type', 'event')}\n"
                           f"data: {payload}\n\n")
                metrics.inc("service_events_streamed_total")
            state = (await asyncio.to_thread(store.status, job_id)) \
                .get("state")
            if state in TERMINAL_STATES:
                # One final, explicitly-typed record so consumers can
                # stop without parsing job semantics, then EOF.
                await emit("event: end\n"
                           f"data: {json.dumps({'state': state})}\n\n",
                           more=False)
                return
            changed = await self.broker.wait(job_id, self.sse_keepalive)
            if not changed:
                await emit(": keepalive\n\n")  # also probes the client

    # -- sweeps ----------------------------------------------------------- #

    async def _sweep_report(self, sweep_id: str, send) -> None:
        sweeps = self.service.sweeps
        doc = await asyncio.to_thread(sweeps.load_report_doc, sweep_id)
        if doc is None:
            view = await asyncio.to_thread(sweeps.sweep_view, sweep_id)
            raise _HTTPAnswer(
                404, f"sweep {sweep_id} has no report yet "
                     f"(state: {view['state']})")
        await self._send_json(send, 200, doc)

    async def _sweep_state(self, sweep_id: str) -> str:
        view = await asyncio.to_thread(
            self.service.sweeps.sweep_view, sweep_id)
        return view["state"]

    async def _sweep_events(self, sweep_id: str, query, send) -> None:
        after, wait = self._event_cursor(query)
        sweeps = self.service.sweeps
        deadline = time.monotonic() + wait
        while True:
            events = await asyncio.to_thread(sweeps.events, sweep_id,
                                             after)
            state = await self._sweep_state(sweep_id)
            remaining = deadline - time.monotonic()
            if events or state in TERMINAL_STATES or remaining <= 0:
                break
            await self.broker.wait("sweep:" + sweep_id,
                                   min(remaining, 1.0))
        next_after = events[-1]["seq"] if events else after
        await self._send_json(send, 200, {
            "events": events, "next_after": next_after, "state": state,
        })

    async def _sweep_events_stream(self, sweep_id: str, query,
                                   send) -> None:
        after, _ = self._event_cursor(query)
        sweeps = self.service.sweeps
        metrics = self.service.metrics
        if not await asyncio.to_thread(sweeps.has_sweep, sweep_id):
            raise StoreError(f"unknown sweep {sweep_id!r}")
        await send({"type": "http.response.start", "status": 200,
                    "headers": [
                        (b"Content-Type", b"text/event-stream"),
                        (b"Cache-Control", b"no-cache"),
                        (b"X-Repro-Api-Version",
                         API_VERSION.encode("latin-1")),
                    ]})
        metrics.inc("service_event_streams_total")

        async def emit(chunk: str, more: bool = True) -> None:
            await send({"type": "http.response.body",
                        "body": chunk.encode("utf-8"), "more_body": more})

        while True:
            events = await asyncio.to_thread(sweeps.events, sweep_id,
                                             after)
            for event in events:
                after = event["seq"]
                payload = json.dumps(event, sort_keys=True)
                await emit(f"id: {event['seq']}\n"
                           f"event: {event.get('type', 'event')}\n"
                           f"data: {payload}\n\n")
                metrics.inc("service_events_streamed_total")
            state = await self._sweep_state(sweep_id)
            if state in TERMINAL_STATES:
                await emit("event: end\n"
                           f"data: {json.dumps({'state': state})}\n\n",
                           more=False)
                return
            changed = await self.broker.wait("sweep:" + sweep_id,
                                             self.sse_keepalive)
            if not changed:
                await emit(": keepalive\n\n")

    # -- fabric tasks and memo ------------------------------------------- #

    async def _run_tasks(self, body, send) -> None:
        if self.service.task_fabric is None:
            raise _HTTPAnswer(404, "task execution not enabled "
                                   "(start with serve --task-workers N)")
        doc = self._parse_body_json(body)
        if not isinstance(doc, dict) or not isinstance(
                doc.get("tasks"), list):
            raise _HTTPAnswer(400, "request body is not {'tasks': [...]}")
        try:
            rows = await asyncio.to_thread(
                self.service.run_tasks, doc["tasks"])
        except ValueError as exc:
            raise _HTTPAnswer(
                400, f"invalid task document: {exc}") from None
        await self._send_json(send, 200, {"results": rows})

    def _memo_store(self):
        store = self.service.memo_store
        if store is None:
            raise _HTTPAnswer(
                404, "memo not enabled (start with serve --memo DIR)")
        return store

    async def _get_memo(self, class_id: str, send) -> None:
        store = self._memo_store()
        doc = await asyncio.to_thread(store.load_entry_doc, class_id)
        if doc is None:
            raise _HTTPAnswer(404, f"no memo entry {class_id!r}")
        await self._send_json(send, 200, doc)

    async def _put_memo(self, class_id: str, body, send) -> None:
        store = self._memo_store()
        doc = self._parse_body_json(body)
        try:
            merged = await asyncio.to_thread(
                store.merge_entry_doc, class_id, doc)
        except (ValueError, KeyError, TypeError) as exc:
            raise _HTTPAnswer(400, f"invalid memo entry: {exc}") from None
        await self._send_json(send, 200, {"merged": merged})

    # -- response plumbing ----------------------------------------------- #

    async def _send_raw(self, send, status: int, body: bytes,
                        content_type: str,
                        extra: Optional[List[Tuple[bytes, bytes]]] = None,
                        ) -> None:
        headers = [
            (b"Content-Type", content_type.encode("latin-1")),
            (b"Content-Length", str(len(body)).encode("latin-1")),
            (b"X-Repro-Api-Version", API_VERSION.encode("latin-1")),
        ]
        headers.extend(extra or [])
        await send({"type": "http.response.start", "status": status,
                    "headers": headers})
        await send({"type": "http.response.body", "body": body,
                    "more_body": False})

    async def _send_json(self, send, status: int, doc,
                         extra: Optional[List[Tuple[bytes, bytes]]] = None,
                         ) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        await self._send_raw(send, status, body, "application/json",
                             extra=extra)


class ServiceServer:
    """The default service front end: asyncio HTTP on a hosted loop.

    Owns a :class:`ResynthesisService` (scheduler + supervisors on
    threads, exactly as before) and serves :class:`ServiceApp` through
    :class:`~repro.service.aserver.AsgiHttpServer` on a dedicated event
    -loop thread — so the synchronous ``start()`` / ``stop()`` /
    context-manager surface every existing caller uses is unchanged,
    while requests ride coroutines instead of per-request OS threads.
    """

    def __init__(
        self,
        store: ArtifactStore,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SupervisorConfig] = None,
        max_workers: int = 2,
        verbose: bool = False,
        task_workers: int = 0,
        tenants: Optional[TenantRegistry] = None,
        queue_limit: int = 0,
        sse_keepalive: float = SSE_KEEPALIVE_SECONDS,
        tenants_file: Optional[str] = None,
    ) -> None:
        self.service = ResynthesisService(
            store, config=config, max_workers=max_workers,
            task_workers=task_workers, tenants=tenants,
            queue_limit=queue_limit, tenants_file=tenants_file,
        )
        self.app = ServiceApp(self.service, verbose=verbose,
                              sse_keepalive=sse_keepalive)
        self._host = host
        self._port = port
        self._bound: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- addresses ------------------------------------------------------- #

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — concrete even when 0 was asked."""
        if self._bound is None:
            raise RuntimeError("server is not started")
        return self._bound

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> None:
        """Start the scheduler and the event-loop thread; returns once
        the socket is bound (raises if binding failed)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self.service.start()
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-asgi", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("async front end failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(asyncio.gather(
                        *pending, return_exceptions=True))
            finally:
                asyncio.set_event_loop(None)
                loop.close()
                self._loop = None

    async def _main(self) -> None:
        from .aserver import AsgiHttpServer

        self._shutdown = asyncio.Event()
        server = AsgiHttpServer(self.app, self._host, self._port)
        try:
            await server.start()
        except BaseException as exc:  # bind failure -> surface in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._bound = server.address
        self.app.startup()
        self._ready.set()
        try:
            await self._shutdown.wait()
        finally:
            await self.app.shutdown()
            await server.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the HTTP front end, then the service (workers halted,
        in-flight jobs re-queued with their checkpoints intact)."""
        loop = self._loop
        if loop is not None and self._shutdown is not None:
            try:
                loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self.service.stop(timeout=timeout)

    def serve_forever(self) -> None:
        """Foreground serving (the CLI's ``serve`` path); Ctrl-C stops."""
        self.start()
        try:
            while True:
                time.sleep(0.2)
        finally:
            self.stop()

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
