"""Deprecated alias of :class:`repro.obs.Registry` (``/metrics``).

The job service's metrics store moved into the unified observability
layer — import :class:`repro.obs.Registry` instead.  This module keeps
the historical ``MetricsRegistry`` import path working as a thin
subclass that

* warns with :class:`DeprecationWarning` on instantiation,
* preserves the legacy read accessors ``counter(name)`` /
  ``gauge(name)`` (the obs registry names them
  :meth:`~repro.obs.Registry.counter_value` /
  :meth:`~repro.obs.Registry.gauge_value`), and
* keeps the old flat ``render_text`` dump (the service now serves real
  Prometheus text exposition via
  :func:`repro.obs.render_prometheus`).

Write paths (``inc`` / ``set_gauge`` / ``observe``) and ``snapshot()``
are inherited unchanged: signatures and the JSON snapshot shape are
identical, so existing callers and dashboards keep working.  The full
catalogue of metric names the service emits is documented in
``docs/SERVICE.md``; naming conventions live in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..obs import Registry

__all__ = ["MetricsRegistry"]


class MetricsRegistry(Registry):
    """Deprecated: use :class:`repro.obs.Registry`."""

    def __init__(self) -> None:
        warnings.warn(
            "repro.service.metrics.MetricsRegistry is deprecated; "
            "use repro.obs.Registry",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__()

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.counter_value(name)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of a gauge (None when never set)."""
        return self.gauge_value(name)

    def render_text(self) -> str:
        """Flat ``name value`` lines (legacy pre-Prometheus dump)."""
        snap = self.snapshot()
        lines = []
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"{name} {value:g}")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"{name} {value:g}")
        for name, s in sorted(snap["summaries"].items()):
            for stat in ("count", "sum", "min", "max"):
                if stat in s:
                    lines.append(f"{name}_{stat} {s[stat]:g}")
        return "\n".join(lines) + "\n"
