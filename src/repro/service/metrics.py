"""Counters, gauges and summaries for the job service (``/metrics``).

A deliberately small, stdlib-only registry: counters only go up, gauges
are set, summaries accumulate ``count/sum/min/max`` of observations
(enough to derive averages without binning decisions).  Everything is
thread-safe — the HTTP handler threads, the scheduler thread and the
supervisor threads all write concurrently.

The full catalogue of metric names the service emits is documented in
``docs/SERVICE.md``; tests pin the load-bearing ones.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class MetricsRegistry:
    """Thread-safe metrics store with a JSON-friendly snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._summaries: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* (>= 0) to the counter *name*."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value*."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the summary *name*."""
        with self._lock:
            s = self._summaries.get(name)
            if s is None:
                self._summaries[name] = {
                    "count": 1.0, "sum": value, "min": value, "max": value,
                }
            else:
                s["count"] += 1
                s["sum"] += value
                s["min"] = min(s["min"], value)
                s["max"] = max(s["max"], value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of a gauge (None when never set)."""
        with self._lock:
            return self._gauges.get(name)

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time copy of every metric, JSON-serializable."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "summaries": {k: dict(v) for k, v in self._summaries.items()},
            }

    def render_text(self) -> str:
        """Flat ``name value`` lines (a Prometheus-exposition subset)."""
        snap = self.snapshot()
        lines = []
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"{name} {value:g}")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"{name} {value:g}")
        for name, s in sorted(snap["summaries"].items()):
            for stat in ("count", "sum", "min", "max"):
                lines.append(f"{name}_{stat} {s[stat]:g}")
        return "\n".join(lines) + "\n"
