"""The job model: a deterministic, content-addressed resynthesis request.

A :class:`JobSpec` is everything needed to run one resynthesis job —
circuit source, procedure, and every knob the procedures take.  Specs are
*content-addressed*: the job id is a SHA-256 prefix of the canonical JSON
encoding, so resubmitting an identical spec lands on the same job (and
its existing checkpoints/results) instead of redoing minutes of work.

Validation here is shape validation only: types, ranges, known procedure
and suite names.  Semantic failures that require building the circuit
(e.g. a combinational cycle in an inline netlist) are deliberately left
to the worker, where they surface as a ``failed`` job carrying the
traceback — the API edge stays cheap and the failure path stays
exercised.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..netlist import Circuit

SPEC_FORMAT = "repro-jobspec"
SPEC_VERSION = 1

#: Procedures a job may request (resolved in the worker).
PROCEDURES = ("procedure2", "procedure3", "combined")


class JobSpecError(ValueError):
    """A submitted spec failed shape validation (HTTP 400 material)."""


@dataclass(frozen=True)
class JobSpec:
    """One resynthesis job, fully determined by its field values.

    Exactly one of ``circuit`` (a benchmark-suite name) and ``netlist``
    (an inline ``repro-netlist`` JSON document) must be set.
    """

    procedure: str = "procedure2"
    circuit: Optional[str] = None
    netlist: Optional[Dict[str, object]] = None
    k: int = 5
    perm_budget: int = 200
    seed: int = 0
    max_passes: int = 10
    verify_patterns: int = 0
    jobs: int = 1
    gate_weight: float = 10.0  # combined objective only

    def to_doc(self) -> Dict[str, object]:
        """JSON-compatible dict form (the canonical wire format)."""
        doc: Dict[str, object] = {
            "format": SPEC_FORMAT,
            "version": SPEC_VERSION,
            "procedure": self.procedure,
            "k": self.k,
            "perm_budget": self.perm_budget,
            "seed": self.seed,
            "max_passes": self.max_passes,
            "verify_patterns": self.verify_patterns,
            "jobs": self.jobs,
            "gate_weight": self.gate_weight,
        }
        if self.circuit is not None:
            doc["circuit"] = self.circuit
        if self.netlist is not None:
            doc["netlist"] = self.netlist
        return doc

    def to_json(self) -> str:
        """Pretty JSON form (what the store persists as ``spec.json``)."""
        return json.dumps(self.to_doc(), indent=1, sort_keys=True)

    @property
    def job_id(self) -> str:
        """Content address: stable across key order and whitespace."""
        canonical = json.dumps(
            self.to_doc(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return f"j{digest[:12]}"

    def describe(self) -> str:
        """One-line human-readable summary."""
        source = self.circuit if self.circuit is not None else (
            f"<inline:{self.netlist.get('name', '?')}>"
        )
        return (f"{self.job_id}: {self.procedure} {source} K={self.k} "
                f"seed={self.seed} jobs={self.jobs}")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def spec_from_doc(doc: object) -> JobSpec:
    """Validate a submitted JSON document and build the :class:`JobSpec`.

    Raises :class:`JobSpecError` with a client-actionable message on any
    shape problem; the HTTP layer maps that to a 400.
    """
    _require(isinstance(doc, dict), "spec must be a JSON object")
    _require(doc.get("format", SPEC_FORMAT) == SPEC_FORMAT,
             f"spec format must be {SPEC_FORMAT!r}")
    _require(doc.get("version", SPEC_VERSION) == SPEC_VERSION,
             f"unsupported spec version {doc.get('version')!r}")

    known = {
        "format", "version", "procedure", "circuit", "netlist", "k",
        "perm_budget", "seed", "max_passes", "verify_patterns", "jobs",
        "gate_weight",
    }
    unknown = sorted(set(doc) - known)
    _require(not unknown, f"unknown spec field(s): {', '.join(unknown)}")

    procedure = doc.get("procedure", "procedure2")
    _require(procedure in PROCEDURES,
             f"unknown procedure {procedure!r}; choose from "
             f"{', '.join(PROCEDURES)}")

    circuit = doc.get("circuit")
    netlist = doc.get("netlist")
    _require((circuit is None) != (netlist is None),
             "exactly one of 'circuit' (suite name) and 'netlist' "
             "(inline repro-netlist document) is required")
    if circuit is not None:
        _require(isinstance(circuit, str), "'circuit' must be a string")
        from ..benchcircuits.suite import suite_names

        _require(circuit in suite_names(),
                 f"unknown suite circuit {circuit!r}; choose from "
                 f"{', '.join(suite_names())}")
    if netlist is not None:
        _require(isinstance(netlist, dict), "'netlist' must be an object")
        _require(netlist.get("format") == "repro-netlist",
                 "'netlist' must be a repro-netlist document")

    ints = {
        "k": (2, 16), "perm_budget": (1, 1_000_000),
        "seed": (-(2 ** 62), 2 ** 62), "max_passes": (1, 10_000),
        "verify_patterns": (0, 1_000_000), "jobs": (1, 256),
    }
    values = {}
    for name, (lo, hi) in ints.items():
        v = doc.get(name, getattr(JobSpec, name))
        _require(isinstance(v, int) and not isinstance(v, bool),
                 f"{name!r} must be an integer")
        _require(lo <= v <= hi, f"{name!r} must be in [{lo}, {hi}]")
        values[name] = v
    gate_weight = doc.get("gate_weight", JobSpec.gate_weight)
    _require(isinstance(gate_weight, (int, float))
             and not isinstance(gate_weight, bool),
             "'gate_weight' must be a number")
    _require(gate_weight >= 0, "'gate_weight' must be >= 0")

    return JobSpec(procedure=procedure, circuit=circuit, netlist=netlist,
                   gate_weight=float(gate_weight), **values)


def spec_from_json(text: str) -> JobSpec:
    """Parse and validate a spec from raw JSON text."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JobSpecError(f"body is not valid JSON: {exc}") from None
    return spec_from_doc(doc)


def resolve_circuit(spec: JobSpec) -> Circuit:
    """Build the spec's circuit (worker-side; may raise on bad netlists)."""
    if spec.circuit is not None:
        from ..benchcircuits.suite import suite_circuit

        return suite_circuit(spec.circuit)
    from ..io.json_io import circuit_from_json

    return circuit_from_json(json.dumps(spec.netlist))
