"""Job execution: run a spec against the store, checkpointing every pass.

:func:`run_job` is the single code path for executing a job — the worker
subprocess calls it, tests call it in-process, and the determinism
contract holds either way: a job that is interrupted after any pass and
re-run resumes from the latest stored checkpoint and produces a report
and result netlist bit-identical to an uninterrupted run (pinned by the
``resume`` differential oracle and ``tests/resynth/test_checkpoint.py``).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..resynth import combined_procedure, procedure2, procedure3
from ..resynth.procedures import PassCheckpoint, ResynthesisReport
from .jobspec import JobSpec, resolve_circuit
from .store import ArtifactStore


def procedure_call(spec: JobSpec):
    """The procedure callable for *spec*, with spec knobs bound.

    Shared by :func:`run_job` and the fabric's ``resynth_cell`` task
    kind (:mod:`repro.fabric.tasks`), so a sweep cell executed on a
    remote fleet member runs through exactly the code path a standalone
    job does — the basis of the cell/job bit-identity contract.
    """
    common = dict(
        k=spec.k,
        perm_budget=spec.perm_budget,
        seed=spec.seed,
        max_passes=spec.max_passes,
        verify_patterns=spec.verify_patterns,
        jobs=spec.jobs,
    )
    if spec.procedure == "procedure2":
        return lambda circuit, **kw: procedure2(circuit, **common, **kw)
    if spec.procedure == "procedure3":
        return lambda circuit, **kw: procedure3(circuit, **common, **kw)
    if spec.procedure == "combined":
        return lambda circuit, **kw: combined_procedure(
            circuit, gate_weight=spec.gate_weight, **common, **kw
        )
    raise ValueError(f"unknown procedure {spec.procedure!r}")


def run_job(
    store: ArtifactStore,
    job_id: str,
    on_pass: Optional[Callable[[PassCheckpoint], None]] = None,
    progress: Optional[Callable[[], None]] = None,
    memo=None,
    fabric=None,
) -> ResynthesisReport:
    """Execute the job, resuming from its latest checkpoint if one exists.

    Per pass: the checkpoint is persisted *first*, then a ``pass`` event
    is appended — so an observed event always implies a resumable
    checkpoint.  ``on_pass`` (tests: fault injection; callers: extra
    bookkeeping) runs after both; ``progress`` (the worker's heartbeat)
    runs last.  The final report is written before the ``completed``
    event for the same reason.

    *memo* — a :class:`repro.memo.MemoStore` or a store directory path —
    is handed to the procedure as the persistent identification cache.
    It is deliberately not part of the spec (and so not of the job id):
    it cannot change the report, only the wall clock.

    *fabric* — an optional :class:`repro.fabric.Fabric` — routes the
    job's candidate evaluation (e.g. to a remote worker fleet, letting
    one service job fan its identification round across hosts).  Like
    the memo, it is execution placement, not job identity: reports are
    bit-identical on any backend, so it stays out of the spec.
    """
    spec = store.load_spec(job_id)
    circuit = resolve_circuit(spec)
    resume = store.latest_checkpoint(job_id)
    if resume is not None:
        store.append_event(
            job_id, "resumed",
            pass_no=resume.pass_no, done=resume.done,
        )

    def checkpoint_hook(ckpt: PassCheckpoint) -> None:
        n_bytes = store.write_checkpoint(job_id, ckpt)
        store.append_event(
            job_id, "pass",
            pass_no=ckpt.pass_no,
            replacements=ckpt.replacements,
            gates=ckpt.gates_now,
            paths=ckpt.paths_now,
            seconds=round(ckpt.pass_seconds[-1], 6),
            checkpoint_bytes=n_bytes,
            done=ckpt.done,
        )
        if on_pass is not None:
            on_pass(ckpt)
        if progress is not None:
            progress()

    proc = procedure_call(spec)
    report = proc(circuit, on_pass=checkpoint_hook, resume=resume,
                  memo=memo, fabric=fabric)
    store.write_report(job_id, report)
    store.append_event(
        job_id, "completed",
        passes=report.passes,
        replacements=report.replacements,
        gates_before=report.gates_before,
        gates_after=report.gates_after,
        paths_before=report.paths_before,
        paths_after=report.paths_after,
        total_seconds=round(report.total_seconds, 6),
    )
    return report
