"""Worker subprocess entry point: ``python -m repro.service.workermain``.

The supervisor launches one of these per job attempt.  The worker owns
the job while it runs: it heartbeats (a background thread plus every
pass boundary), writes checkpoints/events/report through the store, and
on an exception records the traceback to ``error.json`` before exiting
nonzero so the supervisor can attach it to the ``failed`` state.

Exit codes: 0 success, 1 job raised (traceback recorded), 2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
import threading
import traceback
from typing import List, Optional

from .runner import run_job
from .store import ArtifactStore


def worker_main(argv: Optional[List[str]] = None) -> int:
    """Run one job attempt; see module docstring for the protocol."""
    parser = argparse.ArgumentParser(prog="repro.service.workermain")
    parser.add_argument("root", help="artifact store root directory")
    parser.add_argument("job_id")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0)
    parser.add_argument("--memo", default=None,
                        help="shared identification cache directory")
    parser.add_argument("--memo-url", default=None,
                        help="identification memo served over HTTP "
                             "(GET/PUT /memo; overrides --memo)")
    parser.add_argument("--task-worker", action="append", default=[],
                        metavar="URL", dest="task_workers",
                        help="remote fabric worker URL (repeatable): the "
                             "job's candidate evaluation fans out to "
                             "these POST /tasks endpoints")
    try:
        args = parser.parse_args(argv)
    except SystemExit:
        return 2

    store = ArtifactStore(args.root)
    if not store.has_job(args.job_id):
        print(f"unknown job {args.job_id!r} in {args.root}", file=sys.stderr)
        return 2

    stop = threading.Event()

    def beat_forever() -> None:
        while not stop.is_set():
            store.heartbeat(args.job_id)
            stop.wait(args.heartbeat_interval)

    memo = args.memo
    if args.memo_url:
        from ..memo.remote import RemoteMemo

        memo = RemoteMemo(args.memo_url)
    fabric = None
    if args.task_workers:
        from ..fabric.remote import RemoteFabric

        fabric = RemoteFabric(args.task_workers)

    store.heartbeat(args.job_id)
    beater = threading.Thread(target=beat_forever, daemon=True)
    beater.start()
    try:
        run_job(store, args.job_id,
                progress=lambda: store.heartbeat(args.job_id),
                memo=memo, fabric=fabric)
        return 0
    except BaseException as exc:  # noqa: BLE001 — the whole point is capture
        store.write_worker_error(
            args.job_id,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        )
        return 1
    finally:
        stop.set()
        beater.join(timeout=2.0)


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    sys.exit(worker_main())
