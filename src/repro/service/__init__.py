"""Checkpointable resynthesis job service (``repro.service``).

Turns one-shot resynthesis calls into supervised, resumable jobs behind
a stdlib-only HTTP JSON API: a content-addressed job model
(:mod:`jobspec`), a file-backed artifact store holding specs, pass-level
checkpoints, progress events and reports (:mod:`store`), a runner whose
interrupted jobs resume bit-identically (:mod:`runner`), worker
subprocess supervision with heartbeats and bounded retries
(:mod:`supervisor`), and the HTTP service itself (:mod:`api`) with its
client (:mod:`client`).  Metrics go through :class:`repro.obs.Registry`
directly.

Entry points: ``repro-resynth serve`` / ``submit`` / ``jobs`` /
``result`` on the CLI, :class:`ServiceServer` in-process.  The full
lifecycle, checkpoint format and determinism contract are documented in
``docs/SERVICE.md``.
"""

from .api import ResynthesisService, ServiceServer
from .client import ServiceAPIError, ServiceClient, ServiceConnectionError
from .jobspec import (
    JobSpec,
    JobSpecError,
    PROCEDURES,
    resolve_circuit,
    spec_from_doc,
    spec_from_json,
)
from .runner import run_job
from .store import ArtifactStore, JOB_STATES, StoreError, TERMINAL_STATES
from .supervisor import (
    JobOutcome,
    SupervisorConfig,
    WorkerSupervisor,
    default_worker_command,
)

__all__ = [
    "ArtifactStore",
    "JOB_STATES",
    "JobOutcome",
    "JobSpec",
    "JobSpecError",
    "PROCEDURES",
    "ResynthesisService",
    "ServiceAPIError",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceServer",
    "StoreError",
    "SupervisorConfig",
    "TERMINAL_STATES",
    "WorkerSupervisor",
    "default_worker_command",
    "resolve_circuit",
    "run_job",
    "spec_from_doc",
    "spec_from_json",
]
