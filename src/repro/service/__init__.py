"""Checkpointable resynthesis job service (``repro.service``).

Turns one-shot resynthesis calls into supervised, resumable jobs behind
a stdlib-only HTTP JSON API: a content-addressed job model
(:mod:`jobspec`), a file-backed artifact store holding specs, pass-level
checkpoints, progress events and reports (:mod:`store`), a runner whose
interrupted jobs resume bit-identically (:mod:`runner`), worker
subprocess supervision with heartbeats and bounded retries
(:mod:`supervisor`), and the HTTP service itself (:mod:`api`) with its
client (:mod:`client`).  Metrics go through :class:`repro.obs.Registry`
directly.

The HTTP front end is the asyncio one (:mod:`asgi`, served by the
stdlib ASGI host in :mod:`aserver`): long-poll and SSE event streaming
on connection-cheap coroutines, batch submit, per-tenant API-key auth
with quotas and priorities (:mod:`tenants`), bounded-queue backpressure
(429 + ``Retry-After``), and listings answered from a SQLite metadata
index (:mod:`index`) rebuilt from the store at startup.  The original
thread-per-request front end survives as
:class:`ThreadedServiceServer` — the determinism reference.

Entry points: ``repro-resynth serve`` / ``submit`` / ``jobs`` /
``result`` on the CLI, :class:`ServiceServer` in-process.  The full
lifecycle, checkpoint format and determinism contract are documented in
``docs/SERVICE.md``; deployment and operations in ``docs/OPERATIONS.md``.
"""

from .api import ResynthesisService, ThreadedServiceServer
from .asgi import API_VERSION, ServiceApp, ServiceServer
from .client import ServiceAPIError, ServiceClient, ServiceConnectionError
from .index import JobIndex, default_index_path
from .jobspec import (
    JobSpec,
    JobSpecError,
    PROCEDURES,
    resolve_circuit,
    spec_from_doc,
    spec_from_json,
)
from .runner import run_job
from .store import ArtifactStore, JOB_STATES, StoreError, TERMINAL_STATES
from .sweeps import SweepCoordinator
from .supervisor import (
    JobOutcome,
    SupervisorConfig,
    WorkerSupervisor,
    default_worker_command,
)
from .tenants import (
    AuthError,
    BackpressureError,
    PUBLIC_TENANT,
    Tenant,
    TenantRegistry,
)

__all__ = [
    "API_VERSION",
    "ArtifactStore",
    "AuthError",
    "BackpressureError",
    "JOB_STATES",
    "JobIndex",
    "JobOutcome",
    "JobSpec",
    "JobSpecError",
    "PROCEDURES",
    "PUBLIC_TENANT",
    "ResynthesisService",
    "ServiceAPIError",
    "ServiceApp",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceServer",
    "StoreError",
    "SupervisorConfig",
    "SweepCoordinator",
    "TERMINAL_STATES",
    "Tenant",
    "TenantRegistry",
    "ThreadedServiceServer",
    "WorkerSupervisor",
    "default_index_path",
    "default_worker_command",
    "resolve_circuit",
    "run_job",
    "spec_from_doc",
    "spec_from_json",
]
