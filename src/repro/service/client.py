"""Stdlib HTTP client for the job service (used by the CLI and tests).

Thin ``urllib`` wrapper: methods mirror the API routes one-to-one and
return parsed JSON documents.  HTTP error responses carrying a JSON
``{"error": ...}`` body are raised as :class:`ServiceAPIError` with the
server's message and status code, so callers see the server's diagnosis
rather than a bare ``HTTPError``.

Robustness discipline
---------------------
Every request carries a per-request socket ``timeout`` so a hung server
cannot hang the client.  Connection-level failures (refused, reset,
timed out — the server never saw or never answered the request) are
retried with bounded exponential backoff, **but only for GETs**: a GET
here is idempotent, while retrying a ``POST /jobs`` whose response was
lost could submit the job twice.  After the retry budget the failure
surfaces as :class:`ServiceConnectionError` (an ``OSError``, so callers
that already catch connection errors keep working).  Server-answered
errors (:class:`ServiceAPIError`) are never retried — the server made a
deterministic decision — with one exception: **429 backpressure** is an
explicit "come back later", so submits honour the server's
``Retry-After`` up to ``backpressure_retries`` times before surfacing
the 429 (content-addressed job ids make the re-submit safe).

Multi-tenancy: pass ``api_key`` and every request carries it as a
Bearer token.  SSE: :meth:`stream_events` consumes
``GET /jobs/<id>/events/stream`` incrementally.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from .jobspec import JobSpec


class ServiceAPIError(RuntimeError):
    """The server answered with an error status.

    ``retry_after`` carries the parsed ``Retry-After`` header (seconds)
    when the server sent one — 429 backpressure answers do.
    """

    def __init__(self, code: int, message: str,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code
        self.message = message
        self.retry_after = retry_after


class ServiceConnectionError(OSError):
    """The server could not be reached (after any retries).

    Subclasses :class:`OSError` so generic connection-error handling —
    e.g. :class:`repro.fabric.RemoteFabric`'s lost-shard path — catches
    it without knowing this module.
    """

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8734``).

    Parameters
    ----------
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts granted to *idempotent* (GET) requests that fail
        at the connection level.  POST/PUT are never retried here.
    backoff:
        Sleep before the first retry; doubles per subsequent retry.
    api_key:
        Tenant API key; sent as ``Authorization: Bearer <key>`` on
        every request (required when the server runs with a tenants
        file).
    backpressure_retries:
        How many times a 429-answered submit is re-tried after sleeping
        the server's ``Retry-After``.  0 surfaces every 429 directly.
    """

    #: Exceptions that mean "the connection failed" rather than "the
    #: server answered an error" (HTTPError subclasses OSError via
    #: URLError, so it must be handled first — see :meth:`_request`).
    CONNECTION_ERRORS = (OSError, http.client.HTTPException)

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 2, backoff: float = 0.2,
                 api_key: Optional[str] = None,
                 backpressure_retries: int = 0) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backpressure_retries < 0:
            raise ValueError(f"backpressure_retries must be >= 0, "
                             f"got {backpressure_retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.api_key = api_key
        self.backpressure_retries = backpressure_retries
        self._sleep = time.sleep  # test seam

    def _headers(self, body: Optional[object]) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self.api_key is not None:
            headers["Authorization"] = f"Bearer {self.api_key}"
        return headers

    def _request(self, method: str, path: str,
                 body: Optional[object] = None) -> object:
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
        headers = self._headers(body)
        attempts = 1 + (self.retries if method == "GET" else 0)
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                self._sleep(self.backoff * (2 ** (attempt - 1)))
            req = urllib.request.Request(
                self.base_url + path, data=data, headers=headers,
                method=method,
            )
            try:
                with urllib.request.urlopen(
                        req, timeout=self.timeout) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # The server answered: deterministic, never retried here
                # (429s are handled one level up, in _submit_retrying).
                raw = exc.read().decode("utf-8", errors="replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except json.JSONDecodeError:
                    message = raw or exc.reason
                retry_after = None
                header = exc.headers.get("Retry-After") if exc.headers \
                    else None
                if header is not None:
                    try:
                        retry_after = max(0, int(header))
                    except ValueError:
                        retry_after = None
                raise ServiceAPIError(exc.code, message,
                                      retry_after=retry_after) from None
            except self.CONNECTION_ERRORS as exc:
                last_exc = exc
        raise ServiceConnectionError(
            f"{method} {self.base_url}{path} failed after {attempts} "
            f"attempt(s): {last_exc}", attempts,
        ) from last_exc

    def _submit_retrying(self, path: str, body: object) -> object:
        """POST with 429-aware retries: sleep the server's
        ``Retry-After`` and re-submit (safe — job ids are content
        hashes, so a duplicate submit dedups server-side)."""
        for attempt in range(self.backpressure_retries + 1):
            try:
                return self._request("POST", path, body=body)
            except ServiceAPIError as exc:
                if (exc.code != 429
                        or attempt >= self.backpressure_retries):
                    raise
                self._sleep(exc.retry_after
                            if exc.retry_after is not None else 1)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- routes --------------------------------------------------------- #

    def submit(self, spec: JobSpec) -> Dict[str, object]:
        """``POST /jobs`` — returns ``{"id", "state", "created"}``."""
        return self._submit_retrying("/jobs", spec.to_doc())

    def submit_doc(self, doc: Dict[str, object]) -> Dict[str, object]:
        """``POST /jobs`` with a raw spec document."""
        return self._submit_retrying("/jobs", doc)

    def submit_batch(self, specs: List[JobSpec]) -> List[Dict[str, object]]:
        """``POST /jobs/batch`` — admit many specs atomically.

        Returns one ``{"id", "state", "created"}`` row per spec in
        request order.  The whole batch is admitted or rejected (a 429
        means *no* spec was admitted); honours ``backpressure_retries``.
        """
        doc = {"specs": [spec.to_doc() for spec in specs]}
        return self._submit_retrying("/jobs/batch", doc)["jobs"]

    def submit_batch_docs(self, docs: List[Dict[str, object]]
                          ) -> List[Dict[str, object]]:
        """``POST /jobs/batch`` with raw spec documents."""
        return self._submit_retrying("/jobs/batch", {"specs": docs})["jobs"]

    def jobs(self, state: Optional[str] = None,
             tenant: Optional[str] = None,
             limit: Optional[int] = None,
             offset: int = 0) -> List[Dict[str, object]]:
        """``GET /jobs`` — filtered listing from the server's index."""
        params = []
        if state is not None:
            params.append(f"state={state}")
        if tenant is not None:
            params.append(f"tenant={tenant}")
        if limit is not None:
            params.append(f"limit={limit}")
        if offset:
            params.append(f"offset={offset}")
        query = ("?" + "&".join(params)) if params else ""
        return self._request("GET", "/jobs" + query)["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, after: int = 0,
               wait: float = 0.0) -> Dict[str, object]:
        """``GET /jobs/<id>/events`` (long-polls when ``wait > 0``)."""
        return self._request(
            "GET", f"/jobs/{job_id}/events?after={after}&wait={wait}",
        )

    def report(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>/report``."""
        return self._request("GET", f"/jobs/{job_id}/report")

    def result(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>/result`` — the result netlist document."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def run_tasks(self, task_docs: List[Dict[str, object]]
                  ) -> Dict[str, object]:
        """``POST /tasks`` — execute fabric task documents on the server.

        Returns ``{"results": [{"ok": true, "result": ...} |
        {"ok": false, "error": ...}, ...]}`` in task order.  Not retried
        here (a POST): :class:`repro.fabric.RemoteFabric` owns the
        redispatch policy for lost shards.
        """
        return self._request("POST", "/tasks", body={"tasks": task_docs})

    # -- sweeps ---------------------------------------------------------- #

    def submit_sweep(self, spec_doc: Dict[str, object]
                     ) -> Dict[str, object]:
        """``POST /sweeps`` — submit a sweep grid document.

        Returns ``{"id", "state", "cells", "created"}``; honours
        ``backpressure_retries`` (admission is all-or-nothing, and
        sweep ids are content hashes, so a re-submit dedups).
        """
        return self._submit_retrying("/sweeps", spec_doc)

    def sweeps(self) -> List[Dict[str, object]]:
        """``GET /sweeps`` — compact sweep listing rows."""
        return self._request("GET", "/sweeps")["sweeps"]

    def sweep(self, sweep_id: str) -> Dict[str, object]:
        """``GET /sweeps/<id>`` — state + per-cell state counts."""
        return self._request("GET", f"/sweeps/{sweep_id}")

    def sweep_report(self, sweep_id: str) -> Dict[str, object]:
        """``GET /sweeps/<id>/report`` — rows + Pareto front (404
        until every cell has succeeded)."""
        return self._request("GET", f"/sweeps/{sweep_id}/report")

    def sweep_events(self, sweep_id: str, after: int = 0,
                     wait: float = 0.0) -> Dict[str, object]:
        """``GET /sweeps/<id>/events`` (long-polls when ``wait > 0``)."""
        return self._request(
            "GET", f"/sweeps/{sweep_id}/events?after={after}&wait={wait}")

    def sweep_wait(self, sweep_id: str, timeout: float = 600.0,
                   poll: float = 0.5) -> Dict[str, object]:
        """Block (long-polling sweep events) until the sweep is
        terminal; returns the final sweep view."""
        deadline = time.time() + timeout
        after = 0
        while time.time() < deadline:
            chunk = self.sweep_events(sweep_id, after=after,
                                      wait=min(poll * 10, 5.0))
            after = chunk["next_after"]
            if chunk["state"] in ("succeeded", "failed"):
                return self.sweep(sweep_id)
        raise TimeoutError(
            f"sweep {sweep_id} not terminal within {timeout:g}s")

    def jobs_summary(self) -> Dict[str, object]:
        """``GET /jobs/summary`` — per-tenant x per-state counts."""
        return self._request("GET", "/jobs/summary")

    def memo_entry(self, class_id: str) -> Dict[str, object]:
        """``GET /memo/<class-id>`` — one raw memo entry document."""
        return self._request("GET", f"/memo/{class_id}")

    def put_memo_entry(self, class_id: str,
                       doc: Dict[str, object]) -> Dict[str, object]:
        """``PUT /memo/<class-id>`` — merge an entry into the server memo.

        The server validates and merges (a PUT can only add results), so
        concurrent writers lose nothing; returns ``{"merged": N}``.
        """
        return self._request("PUT", f"/memo/{class_id}", body=doc)

    # -- streaming ------------------------------------------------------- #

    def stream_events(self, job_id: str, after: int = 0,
                      ) -> Iterator[Dict[str, object]]:
        """Consume ``GET /jobs/<id>/events/stream`` (SSE) incrementally.

        Yields each event document as the server sends it, beginning
        with the backlog after sequence number *after*; finishes (the
        iterator is exhausted) when the server closes the stream on a
        terminal job state.  Keepalive comments are filtered out.  The
        final ``end`` frame is yielded too, as ``{"type": "end",
        "state": ...}`` — it carries no ``seq``.

        On a dropped connection the last yielded event's ``seq`` is the
        resume cursor: call again with ``after=seq``.
        """
        req = urllib.request.Request(
            self.base_url + f"/jobs/{job_id}/events/stream?after={after}",
            headers=self._headers(None), method="GET",
        )
        try:
            resp = urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or exc.reason
            raise ServiceAPIError(exc.code, message) from None
        with resp:
            event_type: Optional[str] = None
            data_lines: List[str] = []
            for raw_line in resp:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # keepalive comment
                if line.startswith("event:"):
                    event_type = line[6:].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[5:].strip())
                elif not line:
                    if data_lines:
                        doc = json.loads("\n".join(data_lines))
                        if event_type == "end":
                            yield {"type": "end",
                                   "state": doc.get("state")}
                            return
                        yield doc
                    event_type = None
                    data_lines = []

    # -- conveniences --------------------------------------------------- #

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.5) -> Dict[str, object]:
        """Block (long-polling events) until the job is terminal.

        Returns the final job view; raises :class:`TimeoutError` when
        the budget runs out first.
        """
        deadline = time.time() + timeout
        after = 0
        while time.time() < deadline:
            chunk = self.events(job_id, after=after,
                                wait=min(poll * 10, 5.0))
            after = chunk["next_after"]
            if chunk["state"] in ("succeeded", "failed"):
                return self.job(job_id)
        raise TimeoutError(
            f"job {job_id} not terminal within {timeout:g}s"
        )
