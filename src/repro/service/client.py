"""Stdlib HTTP client for the job service (used by the CLI and tests).

Thin ``urllib`` wrapper: methods mirror the API routes one-to-one and
return parsed JSON documents.  HTTP error responses carrying a JSON
``{"error": ...}`` body are raised as :class:`ServiceAPIError` with the
server's message and status code, so callers see the server's diagnosis
rather than a bare ``HTTPError``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from .jobspec import JobSpec


class ServiceAPIError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8734``)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[object] = None) -> object:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or exc.reason
            raise ServiceAPIError(exc.code, message) from None

    # -- routes --------------------------------------------------------- #

    def submit(self, spec: JobSpec) -> Dict[str, object]:
        """``POST /jobs`` — returns ``{"id", "state", "created"}``."""
        return self._request("POST", "/jobs", body=spec.to_doc())

    def submit_doc(self, doc: Dict[str, object]) -> Dict[str, object]:
        """``POST /jobs`` with a raw spec document."""
        return self._request("POST", "/jobs", body=doc)

    def jobs(self) -> List[Dict[str, object]]:
        """``GET /jobs``."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, after: int = 0,
               wait: float = 0.0) -> Dict[str, object]:
        """``GET /jobs/<id>/events`` (long-polls when ``wait > 0``)."""
        return self._request(
            "GET", f"/jobs/{job_id}/events?after={after}&wait={wait}",
        )

    def report(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>/report``."""
        return self._request("GET", f"/jobs/{job_id}/report")

    def result(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>/result`` — the result netlist document."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    # -- conveniences --------------------------------------------------- #

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.5) -> Dict[str, object]:
        """Block (long-polling events) until the job is terminal.

        Returns the final job view; raises :class:`TimeoutError` when
        the budget runs out first.
        """
        deadline = time.time() + timeout
        after = 0
        while time.time() < deadline:
            chunk = self.events(job_id, after=after,
                                wait=min(poll * 10, 5.0))
            after = chunk["next_after"]
            if chunk["state"] in ("succeeded", "failed"):
                return self.job(job_id)
        raise TimeoutError(
            f"job {job_id} not terminal within {timeout:g}s"
        )
