"""A stdlib-asyncio HTTP/1.1 server hosting an ASGI 3 application.

The async front end's transport layer: no third-party dependency, just
``asyncio.start_server`` plus a small, strict HTTP/1.1 request parser
and an ASGI connection driver.  One coroutine per connection — a held
long-poll or SSE stream costs a coroutine and a socket, not an OS
thread, which is what lets thousands of watchers coexist with a handful
of worker subprocesses.

Scope of the implementation (deliberate, documented limits):

* Requests: request-line + headers (bounded at 64 KiB), bodies framed
  by ``Content-Length`` only (no chunked *requests*), bounded by
  ``max_body``.  Oversized or malformed requests are answered with
  ``400``/``413``/``431`` and the connection closed.
* Responses: fixed-length responses (the app sent one body chunk) get
  ``Content-Length`` and keep-alive; streaming responses (the app sent
  ``more_body=True``, e.g. SSE) are framed by connection close
  (``Connection: close``) — valid HTTP/1.1, and exactly how
  EventSource clients consume streams.
* Pipelining is not supported (requests on one connection are handled
  strictly in sequence — what stdlib and browser clients do anyway).

Any ASGI 3 app runs on this server, and the app in
:mod:`repro.service.asgi` runs on any ASGI server (uvicorn et al.) —
the coupling is exactly the ASGI contract, nothing private.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

__all__ = ["AsgiHttpServer", "MAX_HEADER_BYTES", "DEFAULT_MAX_BODY"]

#: Upper bound on request-line + headers.
MAX_HEADER_BYTES = 64 * 1024

#: Default upper bound on request bodies (inline netlists are the
#: biggest legitimate payload; 64 MiB leaves room for syn35932-scale
#: documents while stopping unbounded memory growth).
DEFAULT_MAX_BODY = 64 * 1024 * 1024

_KNOWN_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "PATCH",
                  "OPTIONS")


class _BadRequest(Exception):
    """Protocol violation by the client; carries the answer status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class AsgiHttpServer:
    """Serve one ASGI 3 application over stdlib asyncio."""

    def __init__(
        self,
        app: Callable[..., Awaitable[None]],
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------- #

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return (self.host, self.port)

    async def close(self) -> None:
        """Stop accepting and close listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- per-connection driver ------------------------------------------- #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass  # client went away: normal under load and for SSE
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader) -> bytes:
        try:
            return await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest(431, "request header section too large") \
                from None

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        """Parse one request, run the app; returns keep-alive."""
        try:
            try:
                head = await self._read_head(reader)
            except asyncio.IncompleteReadError as exc:
                if not exc.partial.strip():
                    return False  # clean close between requests
                raise
            scope, body, req_keep_alive = self._parse(head, reader)
            if body is not None:
                body = await body  # awaits the Content-Length read
        except _BadRequest as exc:
            await self._send_simple_error(writer, exc.status, str(exc))
            return False

        conn = _AsgiConnection(writer, scope["method"],
                               body if body is not None else b"",
                               req_keep_alive)
        try:
            await self.app(scope, conn.receive, conn.send)
        except Exception:
            if not conn.started:
                await self._send_simple_error(
                    writer, 500, "internal server error")
                return False
            raise  # mid-stream crash: the connection is already poisoned
        if not conn.started:
            await self._send_simple_error(
                writer, 500, "app returned no response")
            return False
        await conn.finish()
        return conn.keep_alive

    def _parse(self, head: bytes, reader: asyncio.StreamReader):
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest(431, "request header section too large")
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover — latin-1 total
            raise _BadRequest(400, "undecodable request head") from None
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest(400, f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if method.upper() not in _KNOWN_METHODS:
            raise _BadRequest(400, f"unknown method {method!r}")
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _BadRequest(400, f"unsupported version {version!r}")
        headers: List[Tuple[bytes, bytes]] = []
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header line: {line!r}")
            headers.append((name.strip().lower().encode("latin-1"),
                            value.strip().encode("latin-1")))
        header_map = {k: v for k, v in headers}
        if b"transfer-encoding" in header_map:
            raise _BadRequest(400, "chunked request bodies not supported")
        length_raw = header_map.get(b"content-length", b"0")
        try:
            length = int(length_raw)
            if length < 0:
                raise ValueError
        except ValueError:
            raise _BadRequest(400, "bad Content-Length") from None
        if length > self.max_body:
            raise _BadRequest(
                413, f"request body of {length} bytes exceeds the "
                     f"{self.max_body}-byte limit")
        path, _, query = target.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": version.split("/")[1],
            "method": method.upper(),
            "scheme": "http",
            "path": path,
            "raw_path": target.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": headers,
            "server": (self.host, self.port),
            "client": None,
        }
        keep_alive = (version == "HTTP/1.1"
                      and header_map.get(b"connection", b"").lower()
                      != b"close")
        body = reader.readexactly(length) if length else None
        return scope, body, keep_alive

    @staticmethod
    async def _send_simple_error(writer: asyncio.StreamWriter,
                                 status: int, message: str) -> None:
        body = ('{"error": %s}'
                % _json_escape(message)).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


def _json_escape(text: str) -> str:
    import json

    return json.dumps(text)


_REASONS: Dict[int, str] = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _AsgiConnection:
    """receive()/send() pair driving one request/response exchange."""

    def __init__(self, writer: asyncio.StreamWriter, method: str,
                 body: bytes, req_keep_alive: bool) -> None:
        self._writer = writer
        self._method = method
        self._body = body
        self._body_sent = False
        self._req_keep_alive = req_keep_alive
        self.started = False  # http.response.start seen
        self._head: Optional[Tuple[int, List[Tuple[bytes, bytes]]]] = None
        self._streaming = False
        self._finished = False
        self.keep_alive = False

    async def receive(self) -> Dict[str, object]:
        if not self._body_sent:
            self._body_sent = True
            return {"type": "http.request", "body": self._body,
                    "more_body": False}
        # A second receive() only makes sense while waiting for a
        # disconnect; report one when the transport is gone, else park
        # briefly (ASGI allows spurious wakeups; apps re-check state).
        if self._writer.is_closing():
            return {"type": "http.disconnect"}
        await asyncio.sleep(0.05)
        if self._writer.is_closing():
            return {"type": "http.disconnect"}
        return {"type": "http.request", "body": b"", "more_body": False}

    async def send(self, event: Dict[str, object]) -> None:
        etype = event.get("type")
        if etype == "http.response.start":
            if self.started:
                raise RuntimeError("response already started")
            self.started = True
            self._head = (int(event["status"]),
                          [(bytes(k), bytes(v))
                           for k, v in event.get("headers", [])])
            return
        if etype != "http.response.body":
            raise RuntimeError(f"unsupported ASGI event {etype!r}")
        if self._head is None and not self._streaming:
            raise RuntimeError("http.response.body before start")
        body = event.get("body", b"") or b""
        more = bool(event.get("more_body", False))
        if self._head is not None:
            status, headers = self._head
            self._head = None
            self._streaming = more
            self._write_head(status, headers,
                             body_len=None if more else len(body))
        if self._method == "HEAD":
            body = b""
        if body:
            self._writer.write(body)
            await self._writer.drain()
        if not more:
            self._finished = True

    def _write_head(self, status: int,
                    headers: List[Tuple[bytes, bytes]],
                    body_len: Optional[int]) -> None:
        lines = [f"HTTP/1.1 {status} "
                 f"{_REASONS.get(status, 'OK')}".encode("latin-1")]
        have_length = False
        for name, value in headers:
            if name.lower() == b"content-length":
                have_length = True
            lines.append(name + b": " + value)
        if body_len is not None and not have_length:
            lines.append(b"Content-Length: " + str(body_len).encode())
            have_length = True
        # Fixed-length responses can keep the connection; streamed ones
        # are framed by close.
        self.keep_alive = (self._req_keep_alive and have_length
                           and body_len is not None)
        lines.append(b"Connection: keep-alive" if self.keep_alive
                     else b"Connection: close")
        self._writer.write(b"\r\n".join(lines) + b"\r\n\r\n")

    async def finish(self) -> None:
        """Flush after the app returns; close half-finished streams."""
        if not self._finished:
            self.keep_alive = False
        try:
            await self._writer.drain()
        except (ConnectionError, OSError):
            self.keep_alive = False

    @property
    def disconnected(self) -> bool:
        """True once the client's transport is gone."""
        return self._writer.is_closing()
