"""Service-side sweeps: grids of jobs with one lifecycle and one report.

:class:`SweepCoordinator` is how ``POST /sweeps`` turns a
:class:`~repro.sweep.SweepSpec` into service jobs.  It deliberately does
**not** run cells itself (no second execution path): every cell *is* a
:class:`~repro.service.jobspec.JobSpec` submitted through
:meth:`ResynthesisService.submit`, so cells ride the existing admission
queue, tenant quotas, scheduler, supervisors, retries and artifact
store — and a sweep cell's report is bit-identical to the same spec
submitted standalone (they are literally the same job directory).

What the coordinator adds on top:

* **Atomic admission** — capacity for every *new* cell is cleared
  against the queue bound and the tenant's quota up front (the
  ``submit_batch`` discipline), so a sweep lands whole or is rejected
  whole with 429.
* **A sweep lifecycle** — ``<store root>/sweeps/<sweep_id>/`` holds the
  grid (``sweep.json``, write-once), an append-only ``events.jsonl``
  (``submitted`` / per-cell terminal ``cell`` records / ``completed``)
  and, once every cell has succeeded, the aggregate ``report.json``
  (:func:`~repro.sweep.build_sweep_report` — same document the CLI
  runner writes, modulo wall clock).  Cell completion is observed
  through the service's status hook; no polling.
* **Recovery** — sweeps are rebuilt from their directories at startup;
  a sweep whose cells all finished while the service was down gets its
  report built then.

Dedup composes: resubmitting a sweep is a no-op, and a cell whose job
already exists (from a standalone submit or another sweep) joins it
instead of re-running.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional, TYPE_CHECKING, Tuple

from ..persist import atomic_write_text
from .store import ArtifactStore, StoreError, TERMINAL_STATES
from .tenants import PUBLIC_TENANT, Tenant

if TYPE_CHECKING:  # runtime import would be circular (sweep -> jobspec)
    from ..sweep import SweepSpec

__all__ = ["SweepCoordinator"]


class SweepCoordinator:
    """Sweep lifecycle manager over one :class:`ResynthesisService`."""

    def __init__(self, service) -> None:
        self.service = service
        self.store: ArtifactStore = service.store
        self.root = os.path.join(self.store.root, "sweeps")
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        #: sweep_id -> SweepSpec (every known sweep, recovered included).
        self._specs: Dict[str, SweepSpec] = {}
        #: job_id -> sweep ids containing that cell (a job can belong to
        #: several sweeps — cells are content-addressed jobs).
        self._cell_sweeps: Dict[str, List[str]] = {}
        #: Optional observer: ``on_event(sweep_id, seq)`` after every
        #: event append (the async front end's broker hooks here).
        self.on_event: Optional[Callable[[str, int], None]] = None
        self._recover()

    # -- paths ----------------------------------------------------------- #

    def sweep_dir(self, sweep_id: str) -> str:
        if not sweep_id or "/" in sweep_id or os.sep in sweep_id \
                or ".." in sweep_id:
            raise StoreError(f"illegal sweep id {sweep_id!r}")
        return os.path.join(self.root, sweep_id)

    def _path(self, sweep_id: str, name: str) -> str:
        return os.path.join(self.sweep_dir(sweep_id), name)

    def events_path(self, sweep_id: str) -> str:
        """Where the sweep's event log lives (the SSE broker stats it)."""
        return self._path(sweep_id, "events.jsonl")

    def has_sweep(self, sweep_id: str) -> bool:
        try:
            return os.path.exists(self._path(sweep_id, "sweep.json"))
        except StoreError:
            return False

    def sweep_ids(self) -> List[str]:
        """All sweep ids, sorted for stable listings."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            d for d in os.listdir(self.root)
            if os.path.exists(os.path.join(self.root, d, "sweep.json")))

    # -- recovery -------------------------------------------------------- #

    def _recover(self) -> None:
        from ..sweep import sweep_from_doc

        for sweep_id in self.sweep_ids():
            try:
                with open(self._path(sweep_id, "sweep.json"),
                          "r", encoding="utf-8") as fh:
                    spec = sweep_from_doc(json.load(fh))
            except (OSError, ValueError):
                continue  # torn or foreign directory: skip, not fatal
            self._register(spec)
        # Cells may have finished while the service was down (or under
        # another service sharing the store): settle every open sweep.
        for sweep_id in list(self._specs):
            self._maybe_finish(sweep_id)

    def _register(self, spec: SweepSpec) -> None:
        with self._lock:
            self._specs[spec.sweep_id] = spec
            for cell in spec.cells():
                sweeps = self._cell_sweeps.setdefault(cell.cell_id, [])
                if spec.sweep_id not in sweeps:
                    sweeps.append(spec.sweep_id)

    # -- events ---------------------------------------------------------- #

    def append_event(self, sweep_id: str, etype: str,
                     **payload: object) -> int:
        """Append one sweep event; returns its sequence number."""
        path = self.events_path(sweep_id)
        with self._lock:
            seq = ArtifactStore._last_seq(path) + 1
            event = {"seq": seq, "ts": time.time(), "type": etype}
            event.update(payload)
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        if self.on_event is not None:
            self.on_event(sweep_id, seq)
        return seq

    def events(self, sweep_id: str,
               after: int = 0) -> List[Dict[str, object]]:
        """Events with ``seq > after`` (StoreError on unknown sweeps)."""
        if not self.has_sweep(sweep_id):
            raise StoreError(f"unknown sweep {sweep_id!r}")
        out: List[Dict[str, object]] = []
        try:
            with open(self.events_path(sweep_id),
                      "r", encoding="utf-8") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue  # torn line from a crash mid-append
                    if event["seq"] > after:
                        out.append(event)
        except FileNotFoundError:
            pass
        return out

    # -- submission ------------------------------------------------------ #

    def submit(self, spec: SweepSpec,
               tenant: Optional[Tenant] = None) -> Tuple[str, bool]:
        """Admit every cell of *spec*; returns ``(sweep_id, created)``.

        All-or-nothing: admission capacity for the sweep's *new* cells
        (cells whose job the store has never seen count once; known
        jobs count zero times) is checked before anything is written,
        so :class:`~repro.service.tenants.BackpressureError` means no
        cell was admitted.  Resubmitting a known sweep re-admits
        nothing and returns ``created=False``.
        """
        tenant = tenant or PUBLIC_TENANT
        sweep_id = spec.sweep_id
        if self.has_sweep(sweep_id):
            return sweep_id, False
        cells = spec.cells()
        new_ids = {cell.cell_id for cell in cells
                   if not self.store.has_job(cell.cell_id)}
        if new_ids:
            # May raise BackpressureError — before any state is written.
            self.service._check_admission(tenant, count=len(new_ids))
        os.makedirs(self.sweep_dir(sweep_id), exist_ok=True)
        atomic_write_text(self._path(sweep_id, "sweep.json"),
                          spec.to_json())
        self._register(spec)
        self.service.metrics.inc("service_sweeps_submitted_total")
        self.service.metrics.inc("service_sweep_cells_total", len(cells))
        self.append_event(sweep_id, "submitted", cells=len(cells),
                          new=len(new_ids), grid=spec.describe(),
                          tenant=tenant.name)
        for cell in cells:
            # Admission was cleared for the whole sweep above.
            self.service.submit(cell.spec, tenant, _precleared=True)
        # Deduped-terminal cells produce no further status transitions;
        # a sweep of entirely finished cells must settle right now.
        self._maybe_finish(sweep_id)
        return sweep_id, True

    # -- status observation ---------------------------------------------- #

    def notify_status(self, job_id: str,
                      record: Dict[str, object]) -> None:
        """Service status hook: react to a cell reaching a terminal
        state (called for *every* job; non-cells return immediately)."""
        if record.get("state") not in TERMINAL_STATES:
            return
        with self._lock:
            sweep_ids = list(self._cell_sweeps.get(job_id, ()))
        for sweep_id in sweep_ids:
            self.append_event(sweep_id, "cell", job=job_id,
                              state=record.get("state"),
                              attempts=record.get("attempts", 0))
            self._maybe_finish(sweep_id)

    def _cell_states(self, spec: SweepSpec) -> Dict[str, str]:
        states: Dict[str, str] = {}
        for cell in spec.cells():
            try:
                state = self.store.status(cell.cell_id).get("state")
            except StoreError:
                state = "queued"  # submit in flight
            states[cell.cell_id] = state or "queued"
        return states

    def _maybe_finish(self, sweep_id: str) -> None:
        """Build ``report.json`` once, when every cell has succeeded."""
        from ..sweep import build_sweep_report

        spec = self._specs.get(sweep_id)
        if spec is None or os.path.exists(self._path(sweep_id,
                                                     "report.json")):
            return
        states = self._cell_states(spec)
        if any(s not in TERMINAL_STATES for s in states.values()):
            return
        failed = sorted(cid for cid, s in states.items() if s == "failed")
        if failed:
            self.append_event(sweep_id, "completed", state="failed",
                              failed_cells=failed)
            return
        docs = {cid: self.store.load_report_doc(cid) for cid in states}
        if any(doc is None for doc in docs.values()):
            return  # status landed before the report file: retry on the
            # next notify (the supervisor writes report before status,
            # so this is recovery-only territory)
        report = build_sweep_report(spec, docs)
        atomic_write_text(self._path(sweep_id, "report.json"),
                          report.to_json())
        self.service.metrics.inc("service_sweeps_completed_total")
        n_front = sum(len(ids) for ids in report.front.values())
        self.append_event(sweep_id, "completed", state="succeeded",
                          cells=len(report.rows), front=n_front)

    # -- views ------------------------------------------------------------ #

    def load_report_doc(self, sweep_id: str) -> Optional[Dict[str, object]]:
        """The aggregate report document, or None while cells run."""
        if not self.has_sweep(sweep_id):
            raise StoreError(f"unknown sweep {sweep_id!r}")
        try:
            with open(self._path(sweep_id, "report.json"),
                      "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def sweep_state(self, sweep_id: str, states: Dict[str, str]) -> str:
        """The sweep's derived state from its cells' states.

        ``succeeded`` additionally requires ``report.json`` to exist:
        cell statuses land a beat before the status hook finishes the
        aggregate, and the API must never say "succeeded" while
        ``GET /sweeps/<id>/report`` would still 404 — clients chain
        exactly that pair.
        """
        if all(s in TERMINAL_STATES for s in states.values()):
            if any(s == "failed" for s in states.values()):
                return "failed"
            if os.path.exists(self._path(sweep_id, "report.json")):
                return "succeeded"
            return "running"  # cells done, aggregate still being built
        if any(s == "running" for s in states.values()):
            return "running"
        return "queued"

    def sweep_view(self, sweep_id: str) -> Dict[str, object]:
        """The JSON view of one sweep (StoreError on unknown ids)."""
        spec = self._specs.get(sweep_id)
        if spec is None:
            raise StoreError(f"unknown sweep {sweep_id!r}")
        states = self._cell_states(spec)
        counts: Dict[str, int] = {}
        for state in states.values():
            counts[state] = counts.get(state, 0) + 1
        view: Dict[str, object] = {
            "id": sweep_id,
            "state": self.sweep_state(sweep_id, states),
            "cells": len(states),
            "cell_states": {k: counts[k] for k in sorted(counts)},
            "spec": spec.to_doc(),
            "jobs": sorted(states),
        }
        report = self.load_report_doc(sweep_id)
        if report is not None:
            view["front"] = report["front"]
        return view

    def list_view(self) -> List[Dict[str, object]]:
        """Compact rows for ``GET /sweeps``, sweep-id-sorted."""
        rows = []
        for sweep_id in self.sweep_ids():
            spec = self._specs.get(sweep_id)
            if spec is None:
                continue
            states = self._cell_states(spec)
            rows.append({
                "id": sweep_id,
                "state": self.sweep_state(sweep_id, states),
                "cells": len(states),
                "done": sum(1 for s in states.values()
                            if s in TERMINAL_STATES),
            })
        return rows
