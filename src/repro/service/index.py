"""SQLite metadata index over the directory-per-job artifact store.

``GET /jobs`` used to scan the filesystem: one ``listdir`` plus one
``status.json`` read *per job* per request.  Harmless at ten jobs,
ruinous at a million — listing became the service's hottest path under
multi-tenant load.  :class:`JobIndex` keeps the listing columns (state,
attempts, timestamps, tenant, and the spec's headline knobs) in one
SQLite table so listing and filtering are a single indexed query that
never touches a per-job directory.

The index is a **cache, not a second source of truth**: it is rebuilt
from the store at every service startup (:meth:`rebuild`), and kept
fresh afterwards through the store's ``on_status`` observer hook — every
in-process ``status.json`` replace upserts one row.  Worker subprocesses
never write status (only events/checkpoints/reports), so the in-process
hook sees every transition.  Deleting ``index.sqlite3`` is always safe.

Thread-safety: one connection guarded by a lock (the service's HTTP
executor threads, scheduler thread and supervisor threads all write).
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Dict, List, Optional

#: Filename under the store root (sibling of ``jobs/``).
INDEX_FILENAME = "index.sqlite3"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id        TEXT PRIMARY KEY,
    state     TEXT NOT NULL,
    attempts  INTEGER NOT NULL DEFAULT 0,
    created   REAL,
    updated   REAL,
    tenant    TEXT,
    procedure TEXT,
    circuit   TEXT,
    k         INTEGER,
    seed      INTEGER
);
CREATE INDEX IF NOT EXISTS jobs_state  ON jobs (state);
CREATE INDEX IF NOT EXISTS jobs_tenant ON jobs (tenant);
"""

#: Columns served in listing rows, in order.
LIST_COLUMNS = ("id", "state", "attempts", "created", "updated", "tenant",
                "procedure", "circuit", "k", "seed")


class JobIndex:
    """The queryable jobs table (one per service, one file per store)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        """Close the connection (the file stays; rebuilt next startup)."""
        with self._lock:
            self._conn.close()

    # -- building ------------------------------------------------------- #

    def rebuild(self, store) -> int:
        """Drop every row and re-scan *store*; returns the row count.

        The one full filesystem scan the service performs — at startup,
        where it doubles as recovery's walk over the store.
        """
        with self._lock:
            self._conn.execute("DELETE FROM jobs")
            self._conn.commit()
        count = 0
        for job_id in store.job_ids():
            try:
                status = store.status(job_id)
                spec = store.load_spec(job_id)
            except Exception:
                continue  # a torn or half-created job dir: skip, not fatal
            self.record(job_id, status, spec=spec)
            count += 1
        return count

    def record(self, job_id: str, status: Dict[str, object],
               spec=None) -> None:
        """Upsert one job's row from its status record (and, on first
        sight, its spec's headline columns)."""
        row = (
            job_id,
            status.get("state"),
            int(status.get("attempts", 0) or 0),
            status.get("created"),
            status.get("updated"),
            status.get("tenant"),
        )
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state=?, attempts=?, created=?, "
                "updated=?, tenant=COALESCE(?, tenant) WHERE id=?",
                row[1:] + (job_id,),
            )
            if cur.rowcount == 0:
                self._conn.execute(
                    "INSERT OR REPLACE INTO jobs "
                    "(id, state, attempts, created, updated, tenant) "
                    "VALUES (?, ?, ?, ?, ?, ?)", row,
                )
            if spec is not None:
                self._conn.execute(
                    "UPDATE jobs SET procedure=?, circuit=?, k=?, seed=? "
                    "WHERE id=?",
                    (spec.procedure,
                     spec.circuit if spec.circuit is not None
                     else f"<inline:{(spec.netlist or {}).get('name', '?')}>",
                     spec.k, spec.seed, job_id),
                )
            self._conn.commit()

    # -- querying ------------------------------------------------------- #

    def rows(self, state: Optional[str] = None,
             tenant: Optional[str] = None,
             limit: Optional[int] = None,
             offset: int = 0) -> List[Dict[str, object]]:
        """Listing rows, id-sorted, optionally filtered and paged."""
        where, params = [], []
        if state is not None:
            where.append("state = ?")
            params.append(state)
        if tenant is not None:
            where.append("tenant = ?")
            params.append(tenant)
        sql = "SELECT %s FROM jobs" % ", ".join(LIST_COLUMNS)
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY id"
        if limit is not None:
            sql += " LIMIT ? OFFSET ?"
            params += [int(limit), int(offset)]
        elif offset:
            sql += " LIMIT -1 OFFSET ?"
            params.append(int(offset))
        with self._lock:
            cur = self._conn.execute(sql, params)
            rows = cur.fetchall()
        out = []
        for values in rows:
            doc = {k: v for k, v in zip(LIST_COLUMNS, values)
                   if v is not None}
            doc.setdefault("attempts", 0)
            out.append(doc)
        return out

    def summary(self):
        """Per-tenant x per-state counts in one grouped query.

        Returns ``(tenants, states, total)`` where *tenants* maps
        tenant name -> ``{state: count, ..., "total": n}`` (rows with no
        recorded tenant land under ``"public"``), *states* is the
        tenant-agnostic ``{state: count}`` roll-up and *total* the row
        count — the whole ``GET /jobs/summary`` answer from one scan of
        the index, no per-job directory touched.
        """
        sql = ("SELECT COALESCE(tenant, 'public'), state, COUNT(*) "
               "FROM jobs GROUP BY 1, 2 ORDER BY 1, 2")
        with self._lock:
            rows = self._conn.execute(sql).fetchall()
        tenants: Dict[str, Dict[str, int]] = {}
        states: Dict[str, int] = {}
        total = 0
        for tenant, state, count in rows:
            bucket = tenants.setdefault(tenant, {})
            bucket[state] = bucket.get(state, 0) + count
            bucket["total"] = bucket.get("total", 0) + count
            states[state] = states.get(state, 0) + count
            total += count
        return tenants, states, total

    def count(self, state: Optional[str] = None) -> int:
        """Row count, optionally for one state."""
        sql = "SELECT COUNT(*) FROM jobs"
        params: List[object] = []
        if state is not None:
            sql += " WHERE state = ?"
            params.append(state)
        with self._lock:
            return self._conn.execute(sql, params).fetchone()[0]


def default_index_path(store_root: str) -> str:
    """Where a store's index lives (sibling of its ``jobs/`` dir)."""
    return os.path.join(store_root, INDEX_FILENAME)
