"""Worker supervision: subprocess lifecycle, heartbeats, bounded retries.

Each job attempt runs in a dedicated worker subprocess
(:mod:`repro.service.workermain`) so a crash — a Python exception, a
hard ``os._exit``, an OOM kill — can never take the service down.  The
supervisor watches the worker's heartbeat file; a worker silent for
longer than ``heartbeat_timeout`` is killed and treated as a failed
attempt.  Failed attempts are retried up to ``max_retries`` times with
exponential backoff, and because every pass boundary persisted a
checkpoint, a retry resumes where the dead worker left off instead of
redoing its work — deterministically, so a job's final report does not
depend on how many times its worker died (the extension of the
``repro.parallel`` crash-path discipline that makes retries safe).

After the last attempt the job reaches the terminal ``failed`` state
carrying the worker's traceback (when the worker could record one) or
the exit/kill diagnosis (when it could not).

:meth:`WorkerSupervisor.stop` (service shutdown) terminates the current
worker and puts the job back in ``queued`` — no worker subprocess
outlives its supervisor, and the job resumes from its checkpoints when
a service next leases it.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs import Registry
from .store import ArtifactStore

#: Sentinel returned by :meth:`WorkerSupervisor._run_attempt` when the
#: attempt ended because :meth:`WorkerSupervisor.stop` was called rather
#: than because the worker failed.  Compared with ``is``.
_STOPPED = object()


@dataclass
class SupervisorConfig:
    """Supervision knobs (service-wide; see docs/SERVICE.md)."""

    max_retries: int = 2  # retries after the first attempt
    heartbeat_timeout: float = 30.0  # seconds of silence before the kill
    heartbeat_interval: float = 1.0  # worker's beat period
    backoff_base: float = 0.5  # retry n sleeps backoff_base * 2**n
    poll_interval: float = 0.05  # supervisor's worker-watch period
    kill_grace: float = 5.0  # SIGTERM -> SIGKILL escalation window
    #: Opt-in shared identification cache (docs/MEMO.md): when set, every
    #: worker is launched with ``--memo`` pointing here, so jobs feed and
    #: consult one persistent store.  Purely an accelerator — reports are
    #: bit-identical with or without it, which is also why it is *not*
    #: part of the job spec's content address.
    memo_root: Optional[str] = None
    #: Opt-in remote fabric (docs/FABRIC.md): URLs of task-serving
    #: services.  When set, every job worker is launched with one
    #: ``--task-worker`` per URL, so a single service job fans its
    #: per-pass candidate evaluation out to that fleet.  Execution
    #: placement only — reports stay bit-identical — so, like the memo,
    #: it is not part of the job spec's content address.
    fabric_workers: tuple = ()
    #: Opt-in memo-over-HTTP (``--memo-url``): workers consult/feed the
    #: identification memo of the service at this URL instead of a
    #: shared directory.  Overrides ``memo_root`` for workers.
    memo_url: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.heartbeat_timeout <= 0 or self.heartbeat_interval <= 0:
            raise ValueError("heartbeat periods must be positive")


@dataclass
class JobOutcome:
    """Result of supervising one job.

    ``succeeded`` and ``failed`` are the job's terminal states;
    ``stopped`` means :meth:`WorkerSupervisor.stop` interrupted the job
    mid-flight — its status went back to ``queued`` so a later service
    (or restart) resumes it from its checkpoints.
    """

    job_id: str
    state: str  # "succeeded" | "failed" | "stopped"
    attempts: int
    error: Optional[str] = None
    traceback: Optional[str] = None


def default_worker_command(store: ArtifactStore, job_id: str,
                           config: SupervisorConfig) -> List[str]:
    """The real worker: ``python -m repro.service.workermain``."""
    command = [
        sys.executable, "-m", "repro.service.workermain",
        store.root, job_id,
        "--heartbeat-interval", str(config.heartbeat_interval),
    ]
    if config.memo_root:
        command += ["--memo", config.memo_root]
    if config.memo_url:
        command += ["--memo-url", config.memo_url]
    for url in config.fabric_workers:
        command += ["--task-worker", url]
    return command


def _worker_env() -> dict:
    """Child env with this interpreter's ``repro`` importable.

    The service may be running from a source tree (``PYTHONPATH=src``)
    or an installed package; pointing the child at the package parent of
    the *running* ``repro`` works in both layouts.
    """
    import repro

    pkg_parent = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)
    ))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (pkg_parent if not existing
                         else pkg_parent + os.pathsep + existing)
    return env


class WorkerSupervisor:
    """Runs one job to a terminal state through supervised attempts."""

    def __init__(
        self,
        store: ArtifactStore,
        config: Optional[SupervisorConfig] = None,
        metrics: Optional[Registry] = None,
        worker_command: Optional[
            Callable[[ArtifactStore, str, SupervisorConfig], List[str]]
        ] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._store = store
        self._config = config or SupervisorConfig()
        self._metrics = metrics or Registry()
        self._worker_command = worker_command or default_worker_command
        self._sleep = sleep
        self._stop_requested = False
        self._proc: Optional[subprocess.Popen] = None
        self._proc_lock = threading.Lock()
        self._launched_once = False

    def stop(self) -> None:
        """Interrupt a running :meth:`supervise`: the current worker is
        terminated (its checkpoints survive) and the job goes back to
        ``queued`` instead of burning retries."""
        self._stop_requested = True
        with self._proc_lock:
            proc = self._proc
        if proc is not None and proc.poll() is None:
            proc.terminate()

    # -- one attempt ---------------------------------------------------- #

    def _run_attempt(self, job_id: str):
        """Run one worker to completion; returns None on success,
        :data:`_STOPPED` on a stop request, else a failure description."""
        cfg = self._config
        cmd = self._worker_command(self._store, job_id, cfg)
        # Single-writer guard, first launch only: a worker orphaned by a
        # crashed service may still be alive and appending to this job's
        # artifacts, and launching a second worker would interleave two
        # writers in events.jsonl — wait for the orphan's heartbeat to go
        # stale first.  Later launches are retries of a worker this
        # supervisor already reaped, so a fresh-but-dead beat must not
        # stall them.
        while not self._launched_once and not self._stop_requested:
            beat = self._store.last_heartbeat(job_id)
            if beat is None or time.time() - beat > cfg.heartbeat_timeout:
                break
            self._sleep(cfg.poll_interval)
        if self._stop_requested:
            return _STOPPED
        # A stale beat left by the previous attempt must not count
        # against the new worker (it would get killed on the first poll,
        # failing every retry after a hang), so each attempt starts with
        # a clean slate.
        self._store.clear_heartbeat(job_id)
        started = time.time()
        # The worker may take a moment to produce its first heartbeat;
        # count the launch itself as liveness until then.
        proc = subprocess.Popen(
            cmd, env=_worker_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self._launched_once = True
        with self._proc_lock:
            self._proc = proc
        try:
            while True:
                code = proc.poll()
                if code is not None:
                    if code == 0:
                        return None
                    if self._stop_requested:
                        return _STOPPED
                    return f"worker exited with code {code}"
                if self._stop_requested:
                    self._terminate(proc)
                    return _STOPPED
                beat = self._store.last_heartbeat(job_id)
                last_alive = max(beat, started) if beat is not None \
                    else started
                self._metrics.set_gauge(
                    "service_worker_heartbeat_age_seconds",
                    time.time() - last_alive,
                )
                if time.time() - last_alive > cfg.heartbeat_timeout:
                    self._terminate(proc)
                    self._metrics.inc("service_heartbeat_timeouts_total")
                    return (f"worker heartbeat silent for more than "
                            f"{cfg.heartbeat_timeout:g}s; killed")
                self._sleep(cfg.poll_interval)
        finally:
            with self._proc_lock:
                self._proc = None
            if proc.poll() is None:
                self._terminate(proc)

    def _terminate(self, proc: subprocess.Popen) -> None:
        proc.terminate()
        try:
            proc.wait(timeout=self._config.kill_grace)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # -- the attempt loop ----------------------------------------------- #

    def supervise(self, job_id: str) -> JobOutcome:
        """Drive *job_id* from ``queued`` to a terminal state (or back to
        ``queued`` when :meth:`stop` interrupts it)."""
        store = self._store
        cfg = self._config
        attempts = 0
        failure: Optional[str] = None
        while attempts <= cfg.max_retries:
            if self._stop_requested:
                return self._stopped(job_id, attempts)
            attempts += 1
            store.clear_worker_error(job_id)
            store.set_status(job_id, "running", attempts=attempts)
            store.append_event(job_id, "attempt", attempt=attempts)
            job_start = time.time()
            failure = self._run_attempt(job_id)
            self._metrics.observe("service_attempt_seconds",
                                  time.time() - job_start)
            if failure is None:
                store.set_status(job_id, "succeeded", attempts=attempts)
                store.append_event(job_id, "state", state="succeeded")
                self._metrics.inc("service_jobs_succeeded_total")
                return JobOutcome(job_id, "succeeded", attempts)
            if failure is _STOPPED:
                return self._stopped(job_id, attempts)
            retryable = (attempts <= cfg.max_retries
                         and not self._stop_requested)
            store.append_event(
                job_id, "attempt_failed",
                attempt=attempts, reason=failure,
                will_retry=retryable,
            )
            if not retryable:
                break
            self._metrics.inc("service_worker_retries_total")
            backoff = cfg.backoff_base * (2 ** (attempts - 1))
            store.set_status(job_id, "queued", attempts=attempts,
                             last_error=failure)
            self._sleep(backoff)
        error = self._store.read_worker_error(job_id)
        message = error["message"] if error else failure
        tb = error["traceback"] if error else None
        store.set_status(
            job_id, "failed", attempts=attempts,
            error=message, traceback=tb, reason=failure,
        )
        store.append_event(job_id, "state", state="failed", error=message)
        self._metrics.inc("service_jobs_failed_total")
        return JobOutcome(job_id, "failed", attempts,
                          error=message, traceback=tb)

    def _stopped(self, job_id: str, attempts: int) -> JobOutcome:
        """Requeue the interrupted job; its checkpoints make the next
        service run resume it deterministically."""
        store = self._store
        store.set_status(job_id, "queued", attempts=attempts)
        store.append_event(job_id, "stopped", attempt=attempts)
        self._metrics.inc("service_jobs_stopped_total")
        return JobOutcome(job_id, "stopped", attempts)
