"""The resynthesis job service and its stdlib HTTP JSON API.

Two layers:

* :class:`ResynthesisService` — the in-process engine: an admission
  queue over the artifact store, a scheduler thread that leases queued
  jobs to supervisor threads (each of which drives one worker
  subprocess), and the metrics registry.  Usable without HTTP; the CLI
  and tests drive it directly.
* :class:`ServiceServer` — a ``ThreadingHTTPServer`` exposing the
  service as JSON endpoints::

      POST /jobs                  submit a spec -> {"id", "state", "created"}
      GET  /jobs                  list all jobs
      GET  /jobs/<id>             status + spec + progress
      GET  /jobs/<id>/events      event log; ?after=N&wait=S long-polls
      GET  /jobs/<id>/report      final report (netlist embedded)
      GET  /jobs/<id>/result      result netlist document only
      GET  /metrics               JSON snapshot (default) or Prometheus
                                  text exposition when Accept prefers it
      POST /tasks                 execute fabric task documents
                                  (``--task-workers N``; docs/FABRIC.md)
      GET  /memo/<id>             one identification-memo entry document
      PUT  /memo/<id>             merge an entry into the server's memo
                                  (both need ``--memo DIR``; docs/MEMO.md)

  Errors are JSON too: 400 for malformed specs/queries, 404 for unknown
  ids or routes.  See docs/SERVICE.md for the full reference.

The ``/tasks`` endpoint is what turns a fleet of ``serve`` processes
into :class:`~repro.fabric.RemoteFabric` workers: each request carries a
batch of wire-encoded pure-function tasks, executed on the service's own
task fabric (serial for ``--task-workers 1``, a process pool above
that) with per-task outcomes reported — retry policy stays with the
*calling* fabric, which knows whether a failure was the task or the
transport.  The ``/memo`` routes are the first slice of the
memo-over-the-network roadmap item: remote workers share one
authoritative :class:`~repro.memo.MemoStore` without a shared
filesystem (client side: :class:`repro.memo.remote.RemoteMemo`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..fabric.core import Fabric, ProcessFabric, SerialFabric
from ..fabric.tasks import decode_task, encode_result
from ..obs import PROMETHEUS_CONTENT_TYPE, Registry, render_prometheus
from .jobspec import JobSpec, JobSpecError, spec_from_doc
from .store import ArtifactStore, StoreError, TERMINAL_STATES
from .supervisor import SupervisorConfig, WorkerSupervisor

#: Longest long-poll the server will hold a connection for.
MAX_EVENT_WAIT = 30.0

#: Media types that select Prometheus text exposition on ``/metrics``.
_PROMETHEUS_TYPES = ("text/plain", "application/openmetrics-text", "text/*")
#: Media types that select the historical JSON snapshot.
_JSON_TYPES = ("application/json", "application/*")


def _accepts_prometheus(accept: Optional[str]) -> bool:
    """True when an ``Accept`` header *prefers* Prometheus text over JSON.

    JSON stays the default for back-compat: no header, ``*/*`` and ties
    all keep the historical snapshot.  Text wins only when a plain-text
    media type carries a strictly higher q-value than every JSON
    alternative (``*/*`` counts toward JSON as "anything is fine").
    """
    if not accept:
        return False
    best_text = 0.0
    best_json = 0.0
    for clause in accept.split(","):
        parts = [p.strip() for p in clause.split(";")]
        media = parts[0].lower()
        if not media:
            continue
        q = 1.0
        for param in parts[1:]:
            if param.startswith("q="):
                try:
                    q = float(param[2:])
                except ValueError:
                    q = 0.0
        if media in _PROMETHEUS_TYPES:
            best_text = max(best_text, q)
        elif media in _JSON_TYPES or media == "*/*":
            best_json = max(best_json, q)
    return best_text > best_json


class ResynthesisService:
    """Queue + scheduler + supervisors over one artifact store."""

    def __init__(
        self,
        store: ArtifactStore,
        config: Optional[SupervisorConfig] = None,
        max_workers: int = 2,
        metrics: Optional[Registry] = None,
        worker_command=None,
        task_workers: int = 0,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if task_workers < 0:
            raise ValueError("task_workers must be >= 0")
        self.store = store
        self.config = config or SupervisorConfig()
        self.metrics = metrics or Registry()
        self._max_workers = max_workers
        self._worker_command = worker_command  # None -> the real worker
        # The /tasks execution fabric.  max_retries=0: the server reports
        # per-task outcomes and the *calling* fabric owns retry policy
        # (it alone can tell a lost shard from a poisoned task).
        self.task_fabric: Optional[Fabric] = None
        if task_workers == 1:
            self.task_fabric = SerialFabric(registry=self.metrics)
        elif task_workers > 1:
            self.task_fabric = ProcessFabric(task_workers,
                                             registry=self.metrics)
        self._memo_store = None
        self._memo_lock = threading.Lock()
        self._queue: deque = deque()
        self._queued: set = set()
        self._enqueued_at: Dict[str, float] = {}
        self._active: Dict[str, WorkerSupervisor] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Event()
        self._stopping = False
        self._scheduler: Optional[threading.Thread] = None
        self._recover()

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if self._scheduler is not None and self._scheduler.is_alive():
            return
        self._stopping = False
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="repro-service-scheduler",
            daemon=True,
        )
        self._scheduler.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop scheduling, halt active supervisors (terminating their
        worker subprocesses), and wait for them to settle.

        Interrupted jobs go back to ``queued`` with their checkpoints
        intact, so a restarted service resumes them — and no orphaned
        worker survives to race a future attempt for the event log.
        """
        self._stopping = True
        self._wakeup.set()
        if self._scheduler is not None:
            self._scheduler.join(timeout=timeout)
        with self._lock:
            supervisors = list(self._active.values())
        for supervisor in supervisors:
            supervisor.stop()
        deadline = time.time() + timeout
        try:
            while time.time() < deadline:
                with self._lock:
                    if not self._active:
                        return
                time.sleep(0.05)
        finally:
            if self.task_fabric is not None:
                self.task_fabric.close()

    def _recover(self) -> None:
        """Re-queue jobs a previous process left queued or running.

        A job found ``running`` at startup is usually an orphan of a
        crashed service — its worker is gone, but its checkpoints are
        not, so it simply resumes.  If the old worker is in fact still
        alive, the supervisor waits out its heartbeat before launching a
        replacement, preserving the event log's single-writer rule.
        """
        for job_id in self.store.job_ids():
            state = self.store.status(job_id).get("state")
            if state in ("queued", "running"):
                self.store.set_status(job_id, "queued")
                self._enqueue(job_id)

    # -- submission ----------------------------------------------------- #

    def submit(self, spec: JobSpec) -> Tuple[str, bool]:
        """Admit a job; returns ``(job_id, created)``.

        Content-addressed dedup: an identical spec joins the existing
        job.  A deduped job in a terminal state is *not* re-run — its
        artifacts are already on disk.
        """
        job_id, created = self.store.create_job(spec)
        self.metrics.inc("service_jobs_submitted_total")
        if created:
            self.store.append_event(job_id, "submitted",
                                    spec=spec.describe())
            self._enqueue(job_id)
        else:
            self.metrics.inc("service_jobs_deduplicated_total")
            state = self.store.status(job_id).get("state")
            if state == "queued":
                self._enqueue(job_id)  # recovered store, service restart
        return job_id, created

    def _enqueue(self, job_id: str) -> None:
        with self._lock:
            if job_id in self._queued or job_id in self._active:
                return
            self._queue.append(job_id)
            self._queued.add(job_id)
            self._enqueued_at[job_id] = time.perf_counter()
            self.metrics.set_gauge("service_queue_depth", len(self._queue))
        self._wakeup.set()

    # -- scheduling ----------------------------------------------------- #

    def _schedule_loop(self) -> None:
        while not self._stopping:
            launched = self._launch_ready()
            if not launched:
                self._wakeup.wait(timeout=0.1)
                self._wakeup.clear()

    def _launch_ready(self) -> bool:
        with self._lock:
            if not self._queue or len(self._active) >= self._max_workers:
                return False
            job_id = self._queue.popleft()
            self._queued.discard(job_id)
            enqueued = self._enqueued_at.pop(job_id, None)
            if enqueued is not None:
                self.metrics.observe("service_queue_wait_seconds",
                                     time.perf_counter() - enqueued)
            supervisor = WorkerSupervisor(
                self.store, self.config, metrics=self.metrics,
                worker_command=self._worker_command,
            )
            self._active[job_id] = supervisor
            self.metrics.set_gauge("service_queue_depth", len(self._queue))
            self.metrics.set_gauge("service_running_jobs",
                                   len(self._active))
        thread = threading.Thread(
            target=self._supervise, args=(job_id, supervisor),
            name=f"repro-service-{job_id}", daemon=True,
        )
        thread.start()
        return True

    def _supervise(self, job_id: str, supervisor: WorkerSupervisor) -> None:
        try:
            outcome = supervisor.supervise(job_id)
            if outcome.state == "succeeded":
                report = self.store.load_report(job_id)
                if report is not None:
                    for seconds in report.pass_seconds:
                        self.metrics.observe("service_pass_seconds", seconds)
        finally:
            with self._lock:
                self._active.pop(job_id, None)
                self.metrics.set_gauge("service_running_jobs",
                                       len(self._active))
            self._wakeup.set()

    # -- fabric tasks ---------------------------------------------------- #

    def run_tasks(self, docs: List[object]) -> List[Dict[str, object]]:
        """Decode and execute wire task documents; per-task outcome rows.

        Raises :class:`ValueError` when any document fails its kind's
        strict decode (the handler answers 400 — a malformed task is the
        *request's* fault).  Execution failures, by contrast, land in
        the task's own ``{"ok": false, "error": ...}`` row so one
        poisoned task cannot hide its shard-mates' results.
        """
        if self.task_fabric is None:
            raise RuntimeError("task execution is not enabled")
        tasks = [decode_task(doc) for doc in docs]
        self.metrics.inc("service_tasks_total", len(tasks))
        outcomes = self.task_fabric.map_outcomes(tasks)
        rows: List[Dict[str, object]] = []
        errors = 0
        for task, (ok, value) in zip(tasks, outcomes):
            if ok:
                rows.append({"ok": True,
                             "result": encode_result(task.kind, value)})
            else:
                errors += 1
                rows.append({"ok": False, "error": str(value)})
        if errors:
            self.metrics.inc("service_task_errors_total", errors)
        return rows

    # -- memo ------------------------------------------------------------ #

    @property
    def memo_store(self):
        """The authoritative memo behind ``/memo`` (None when disabled).

        Lazily opened from ``config.memo_root`` — the same store the
        supervisor hands its job workers, so fleet PUTs and local
        workers converge on one directory.
        """
        if self.config.memo_root is None:
            return None
        with self._memo_lock:
            if self._memo_store is None:
                from ..memo import MemoStore

                self._memo_store = MemoStore(self.config.memo_root,
                                             registry=self.metrics)
            return self._memo_store

    # -- views ---------------------------------------------------------- #

    def job_view(self, job_id: str) -> Dict[str, object]:
        """The JSON view of one job (raises StoreError on unknown ids)."""
        spec = self.store.load_spec(job_id)
        status = self.store.status(job_id)
        view: Dict[str, object] = {
            "id": job_id,
            "state": status.get("state"),
            "attempts": status.get("attempts", 0),
            "created": status.get("created"),
            "updated": status.get("updated"),
            "spec": spec.to_doc(),
        }
        for key in ("error", "traceback", "reason"):
            if status.get(key) is not None:
                view[key] = status[key]
        passes = self.store.checkpoint_passes(job_id)
        if passes:
            view["checkpointed_passes"] = passes
        report = self.store.load_report_doc(job_id)
        if report is not None:
            view["report"] = {
                k: v for k, v in report.items() if k != "circuit"
            }
        return view

    def list_view(self) -> List[Dict[str, object]]:
        """Compact JSON rows for ``GET /jobs``."""
        rows = []
        for job_id in self.store.job_ids():
            status = self.store.status(job_id)
            rows.append({
                "id": job_id,
                "state": status.get("state"),
                "attempts": status.get("attempts", 0),
                "updated": status.get("updated"),
            })
        return rows


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the service (one instance per request)."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # Populated by ServiceServer via a subclass attribute.
    service: ResynthesisService = None  # type: ignore[assignment]

    def log_message(self, fmt: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------- #

    def _send_body(self, code: int, body: bytes,
                   content_type: str) -> None:
        """Send one response with the *per-endpoint* content type.

        (Historically the handler hardcoded ``application/json`` for
        every response; the Prometheus exposition endpoint needs
        ``text/plain; version=0.0.4``.)
        """
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, doc: object) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self._send_body(code, body, "application/json")

    def _error(self, code: int, message: str) -> None:
        self.service.metrics.inc("service_http_errors_total")
        self._send_json(code, {"error": message})

    def _read_json_body(self) -> object:
        """The request body parsed as JSON (ValueError on anomalies)."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ValueError("bad Content-Length") from None
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not JSON: {exc}") from None

    # -- routes --------------------------------------------------------- #

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self.service.metrics.inc("service_http_requests_total")
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/")
        if path == "/jobs":
            self._submit_job()
        elif path == "/tasks":
            self._run_tasks()
        else:
            self._error(404, f"no such route: POST {parsed.path}")

    def _submit_job(self) -> None:
        try:
            doc = self._read_json_body()
            spec = spec_from_doc(doc)
        except (JobSpecError, ValueError) as exc:
            self._error(400, f"invalid job spec: {exc}")
            return
        job_id, created = self.service.submit(spec)
        state = self.service.store.status(job_id).get("state")
        self._send_json(201 if created else 200, {
            "id": job_id, "state": state, "created": created,
        })

    def _run_tasks(self) -> None:
        """``POST /tasks``: execute a fabric task batch (docs/FABRIC.md)."""
        if self.service.task_fabric is None:
            self._error(404, "task execution not enabled "
                             "(start with serve --task-workers N)")
            return
        try:
            doc = self._read_json_body()
        except ValueError as exc:
            self._error(400, str(exc))
            return
        if not isinstance(doc, dict) or not isinstance(
                doc.get("tasks"), list):
            self._error(400, "request body is not {'tasks': [...]}")
            return
        try:
            rows = self.service.run_tasks(doc["tasks"])
        except ValueError as exc:
            self._error(400, f"invalid task document: {exc}")
            return
        self._send_json(200, {"results": rows})

    def do_PUT(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self.service.metrics.inc("service_http_requests_total")
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "memo":
            self._error(404, f"no such route: PUT {parsed.path}")
            return
        store = self.service.memo_store
        if store is None:
            self._error(404, "memo not enabled (start with serve --memo DIR)")
            return
        try:
            doc = self._read_json_body()
            merged = store.merge_entry_doc(parts[1], doc)
        except (ValueError, KeyError, TypeError) as exc:
            self._error(400, f"invalid memo entry: {exc}")
            return
        self._send_json(200, {"merged": merged})

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self.service.metrics.inc("service_http_requests_total")
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        try:
            if parts == ["metrics"]:
                self._metrics()
            elif parts == ["jobs"]:
                self._send_json(200, {"jobs": self.service.list_view()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.service.job_view(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs":
                self._job_subresource(parts[1], parts[2], query)
            elif len(parts) == 2 and parts[0] == "memo":
                self._memo_entry(parts[1])
            else:
                self._error(404, f"no such route: GET {parsed.path}")
        except StoreError as exc:
            self._error(404, str(exc))

    def _metrics(self) -> None:
        """``GET /metrics``: JSON snapshot or Prometheus exposition.

        The historical JSON document stays the default (no ``Accept``
        header, ``*/*``, ``application/json`` — every existing client).
        Prometheus text exposition is served when the client *prefers*
        a plain-text flavour: ``Accept: text/plain`` or
        ``application/openmetrics-text`` with a q-value strictly above
        any JSON alternative.
        """
        registry = self.service.metrics
        if _accepts_prometheus(self.headers.get("Accept")):
            body = render_prometheus(registry).encode("utf-8")
            self._send_body(200, body, PROMETHEUS_CONTENT_TYPE)
        else:
            self._send_json(200, registry.snapshot())

    def _memo_entry(self, class_id: str) -> None:
        """``GET /memo/<id>``: one raw entry document, 404 when absent.

        Served verbatim — the requesting :class:`~repro.memo.RemoteMemo`
        validates against the key it computed, which is where corruption
        must be caught to be meaningful.
        """
        store = self.service.memo_store
        if store is None:
            self._error(404, "memo not enabled (start with serve --memo DIR)")
            return
        doc = store.load_entry_doc(class_id)
        if doc is None:
            self._error(404, f"no memo entry {class_id!r}")
            return
        self._send_json(200, doc)

    def _job_subresource(self, job_id: str, leaf: str,
                         query: Dict[str, List[str]]) -> None:
        store = self.service.store
        if leaf == "events":
            self._events(job_id, query)
        elif leaf == "report":
            doc = store.load_report_doc(job_id)
            if doc is None:
                if not store.has_job(job_id):
                    raise StoreError(f"unknown job {job_id!r}")
                self._error(404, f"job {job_id} has no report yet "
                                 f"(state: {store.status(job_id)['state']})")
            else:
                self._send_json(200, doc)
        elif leaf == "result":
            doc = store.load_report_doc(job_id)
            if doc is None:
                if not store.has_job(job_id):
                    raise StoreError(f"unknown job {job_id!r}")
                self._error(404, f"job {job_id} has no result yet "
                                 f"(state: {store.status(job_id)['state']})")
            else:
                self._send_json(200, doc["circuit"])
        else:
            raise StoreError(f"unknown job resource {leaf!r}")

    def _events(self, job_id: str, query: Dict[str, List[str]]) -> None:
        try:
            after = int(query.get("after", ["0"])[0])
            wait = min(float(query.get("wait", ["0"])[0]), MAX_EVENT_WAIT)
        except ValueError:
            self._error(400, "'after' must be an int, 'wait' a float")
            return
        store = self.service.store
        deadline = time.time() + wait
        while True:
            events = store.events(job_id, after=after)  # 404s unknown ids
            state = store.status(job_id).get("state")
            # Terminal jobs emit no further events; return immediately so
            # pollers do not burn their full wait on a finished job.
            if events or state in TERMINAL_STATES or time.time() >= deadline:
                break
            time.sleep(0.05)
        next_after = events[-1]["seq"] if events else after
        self._send_json(200, {
            "events": events, "next_after": next_after, "state": state,
        })


class ServiceServer:
    """Owns a :class:`ResynthesisService` plus its HTTP front end."""

    def __init__(
        self,
        store: ArtifactStore,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SupervisorConfig] = None,
        max_workers: int = 2,
        verbose: bool = False,
        task_workers: int = 0,
    ) -> None:
        self.service = ResynthesisService(
            store, config=config, max_workers=max_workers,
            task_workers=task_workers,
        )
        handler = type("BoundHandler", (_Handler,),
                       {"service": self.service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._httpd.verbose = verbose  # read by _Handler.log_message
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start the scheduler and the HTTP listener (background thread)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            kwargs={"poll_interval": 0.1}, daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the HTTP listener, then the service."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self.service.stop(timeout=timeout)

    def serve_forever(self) -> None:
        """Foreground serving (the CLI's ``serve`` path); Ctrl-C stops."""
        self.service.start()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self._httpd.server_close()
            self.service.stop()

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
