"""The resynthesis job service engine and its legacy threaded front end.

Two layers:

* :class:`ResynthesisService` — the in-process engine: a bounded,
  tenant-aware priority admission queue over the artifact store, a
  scheduler thread that leases queued jobs to supervisor threads (each
  of which drives one worker subprocess), the SQLite job index
  (:mod:`repro.service.index`) that answers listings without touching
  per-job directories, and the metrics registry.  Usable without HTTP;
  the CLI and tests drive it directly.
* :class:`ThreadedServiceServer` — the original ``ThreadingHTTPServer``
  front end, kept for comparison runs and as the determinism reference
  (one OS thread per in-flight request; no SSE, batch or tenant
  routes).  The default front end is now the asyncio one —
  :class:`repro.service.asgi.ServiceServer` — which serves a superset
  of these endpoints::

      POST /jobs                  submit a spec -> {"id", "state", "created"}
      GET  /jobs                  list all jobs
      GET  /jobs/<id>             status + spec + progress
      GET  /jobs/<id>/events      event log; ?after=N&wait=S long-polls
      GET  /jobs/<id>/report      final report (netlist embedded)
      GET  /jobs/<id>/result      result netlist document only
      GET  /metrics               JSON snapshot (default) or Prometheus
                                  text exposition when Accept prefers it
      POST /tasks                 execute fabric task documents
                                  (``--task-workers N``; docs/FABRIC.md)
      GET  /memo/<id>             one identification-memo entry document
      PUT  /memo/<id>             merge an entry into the server's memo
                                  (both need ``--memo DIR``; docs/MEMO.md)

  Errors are JSON too: 400 for malformed specs/queries, 404 for unknown
  ids or routes.  See docs/SERVICE.md for the full reference.

The ``/tasks`` endpoint is what turns a fleet of ``serve`` processes
into :class:`~repro.fabric.RemoteFabric` workers: each request carries a
batch of wire-encoded pure-function tasks, executed on the service's own
task fabric (serial for ``--task-workers 1``, a process pool above
that) with per-task outcomes reported — retry policy stays with the
*calling* fabric, which knows whether a failure was the task or the
transport.  The ``/memo`` routes are the first slice of the
memo-over-the-network roadmap item: remote workers share one
authoritative :class:`~repro.memo.MemoStore` without a shared
filesystem (client side: :class:`repro.memo.remote.RemoteMemo`).
"""

from __future__ import annotations

import heapq
import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..fabric.core import Fabric, ProcessFabric, SerialFabric
from ..fabric.tasks import decode_task, encode_result
from ..obs import PROMETHEUS_CONTENT_TYPE, Registry, render_prometheus
from .index import JobIndex, default_index_path
from .jobspec import JobSpec, JobSpecError, spec_from_doc
from .store import ArtifactStore, StoreError, TERMINAL_STATES
from .supervisor import SupervisorConfig, WorkerSupervisor
from .tenants import (
    BackpressureError,
    PUBLIC_TENANT,
    Tenant,
    TenantRegistry,
)

#: Longest long-poll the server will hold a connection for.
MAX_EVENT_WAIT = 30.0

#: Media types that select Prometheus text exposition on ``/metrics``.
_PROMETHEUS_TYPES = ("text/plain", "application/openmetrics-text", "text/*")
#: Media types that select the historical JSON snapshot.
_JSON_TYPES = ("application/json", "application/*")


def _accepts_prometheus(accept: Optional[str]) -> bool:
    """True when an ``Accept`` header *prefers* Prometheus text over JSON.

    JSON stays the default for back-compat: no header, ``*/*`` and ties
    all keep the historical snapshot.  Text wins only when a plain-text
    media type carries a strictly higher q-value than every JSON
    alternative (``*/*`` counts toward JSON as "anything is fine").
    """
    if not accept:
        return False
    best_text = 0.0
    best_json = 0.0
    for clause in accept.split(","):
        parts = [p.strip() for p in clause.split(";")]
        media = parts[0].lower()
        if not media:
            continue
        q = 1.0
        for param in parts[1:]:
            if param.startswith("q="):
                try:
                    q = float(param[2:])
                except ValueError:
                    q = 0.0
        if media in _PROMETHEUS_TYPES:
            best_text = max(best_text, q)
        elif media in _JSON_TYPES or media == "*/*":
            best_json = max(best_json, q)
    return best_text > best_json


class ResynthesisService:
    """Queue + scheduler + supervisors + index over one artifact store.

    The admission queue is a **priority queue** (higher tenant priority
    launches first, FIFO within a level) bounded by ``queue_limit``
    (0 = unbounded): a submit that would exceed the bound — or its
    tenant's ``max_active`` quota — raises
    :class:`~repro.service.tenants.BackpressureError`, which the HTTP
    front end maps to ``429`` + ``Retry-After``.  Listings are answered
    by the SQLite :class:`~repro.service.index.JobIndex`, rebuilt from
    the store at startup and kept fresh via the store's ``on_status``
    hook — the store stays the source of truth.
    """

    def __init__(
        self,
        store: ArtifactStore,
        config: Optional[SupervisorConfig] = None,
        max_workers: int = 2,
        metrics: Optional[Registry] = None,
        worker_command=None,
        task_workers: int = 0,
        tenants: Optional[TenantRegistry] = None,
        queue_limit: int = 0,
        tenants_file: Optional[str] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if task_workers < 0:
            raise ValueError("task_workers must be >= 0")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0 (0 = unbounded)")
        self.store = store
        self.config = config or SupervisorConfig()
        self.metrics = metrics or Registry()
        if tenants is None and tenants_file is not None:
            tenants = TenantRegistry.from_file(tenants_file)
        self.tenants = tenants or TenantRegistry()
        self._tenants_file = tenants_file
        self._tenants_stamp = self._stat_tenants_file()
        self.queue_limit = queue_limit
        self._max_workers = max_workers
        self._worker_command = worker_command  # None -> the real worker
        # The /tasks execution fabric.  max_retries=0: the server reports
        # per-task outcomes and the *calling* fabric owns retry policy
        # (it alone can tell a lost shard from a poisoned task).
        self.task_fabric: Optional[Fabric] = None
        if task_workers == 1:
            self.task_fabric = SerialFabric(registry=self.metrics)
        elif task_workers > 1:
            self.task_fabric = ProcessFabric(task_workers,
                                             registry=self.metrics)
        self._memo_store = None
        self._memo_lock = threading.Lock()
        # Heap entries: (-priority, admission_seq, job_id).
        self._queue: List[Tuple[int, int, str]] = []
        self._admit_seq = 0
        self._queued: set = set()
        self._enqueued_at: Dict[str, float] = {}
        self._active: Dict[str, WorkerSupervisor] = {}
        self._job_tenant: Dict[str, str] = {}
        self._tenant_active: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Event()
        self._stopping = False
        self._scheduler: Optional[threading.Thread] = None
        self.index = JobIndex(default_index_path(store.root))
        # The sweep coordinator (lazy import: repro.sweep pulls this
        # package's jobspec back in) must exist before the status hook
        # can fire — it observes cell completions through it.
        from .sweeps import SweepCoordinator

        self.sweeps = SweepCoordinator(self)
        store.on_status = self._on_status
        self.index.rebuild(store)
        self._recover()

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if self._scheduler is not None and self._scheduler.is_alive():
            return
        self._stopping = False
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="repro-service-scheduler",
            daemon=True,
        )
        self._scheduler.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop scheduling, halt active supervisors (terminating their
        worker subprocesses), and wait for them to settle.

        Interrupted jobs go back to ``queued`` with their checkpoints
        intact, so a restarted service resumes them — and no orphaned
        worker survives to race a future attempt for the event log.
        """
        self._stopping = True
        self._wakeup.set()
        if self._scheduler is not None:
            self._scheduler.join(timeout=timeout)
        with self._lock:
            supervisors = list(self._active.values())
        for supervisor in supervisors:
            supervisor.stop()
        deadline = time.time() + timeout
        try:
            while time.time() < deadline:
                with self._lock:
                    if not self._active:
                        return
                time.sleep(0.05)
        finally:
            if self.task_fabric is not None:
                self.task_fabric.close()
            if self.store.on_status == self._on_status:
                self.store.on_status = None
            self.index.close()

    def _recover(self) -> None:
        """Re-queue jobs a previous process left queued or running.

        A job found ``running`` at startup is usually an orphan of a
        crashed service — its worker is gone, but its checkpoints are
        not, so it simply resumes.  If the old worker is in fact still
        alive, the supervisor waits out its heartbeat before launching a
        replacement, preserving the event log's single-writer rule.
        """
        for job_id in self.store.job_ids():
            status = self.store.status(job_id)
            if status.get("state") in ("queued", "running"):
                tenant = self.tenants.get(status.get("tenant"))
                self.store.set_status(job_id, "queued")
                self._enqueue(job_id, tenant)

    # -- status observer ------------------------------------------------- #

    def _on_status(self, job_id: str, record: Dict[str, object]) -> None:
        """Store hook: mirror every status replace into the job index
        and let the sweep coordinator observe cell completions."""
        self.index.record(job_id, record)
        self.sweeps.notify_status(job_id, record)

    # -- tenants hot reload ---------------------------------------------- #

    def _stat_tenants_file(self) -> Optional[Tuple[int, int]]:
        if self._tenants_file is None:
            return None
        try:
            st = os.stat(self._tenants_file)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def maybe_reload_tenants(self) -> bool:
        """Reload the tenants file if it changed on disk; True on swap.

        Called from the request path (one ``stat`` when a tenants file
        is configured, nothing otherwise).  A reload is **rejected** —
        with a logged warning, never a crash, keeping the old registry
        in force — when the new file is unreadable/invalid or when it
        would orphan a tenant that still has queued-or-running jobs
        (their quota accounting would dangle).  A rejected file is not
        retried until it changes again, so one bad edit logs once, not
        once per request.
        """
        stamp = self._stat_tenants_file()
        if stamp is None or stamp == self._tenants_stamp:
            return False
        self._tenants_stamp = stamp
        try:
            registry = TenantRegistry.from_file(self._tenants_file)
        except (OSError, ValueError) as exc:
            print(f"[service] tenants reload rejected: {exc}",
                  file=sys.stderr)
            return False
        with self._lock:
            active = set(self._job_tenant.values())
        known = {t.name for t in registry.tenants()} | {PUBLIC_TENANT.name}
        orphaned = sorted(active - known)
        if orphaned:
            print(f"[service] tenants reload rejected: would orphan "
                  f"active jobs of tenant(s) {', '.join(orphaned)}",
                  file=sys.stderr)
            return False
        self.tenants = registry
        self.metrics.inc("service_tenant_reloads_total")
        print(f"[service] tenants reloaded from {self._tenants_file} "
              f"({len(registry.tenants())} tenant(s))", file=sys.stderr)
        return True

    # -- submission ----------------------------------------------------- #

    def submit(self, spec: JobSpec,
               tenant: Optional[Tenant] = None,
               _precleared: bool = False) -> Tuple[str, bool]:
        """Admit a job for *tenant*; returns ``(job_id, created)``.

        Content-addressed dedup: an identical spec joins the existing
        job.  A deduped job in a terminal state is *not* re-run — its
        artifacts are already on disk.  Dedup is checked **before**
        backpressure: re-submitting a known job never consumes queue
        capacity, so idempotent retries stay cheap under load.

        Raises :class:`BackpressureError` when admitting a *new* job
        would exceed ``queue_limit`` or the tenant's ``max_active``.
        """
        tenant = tenant or PUBLIC_TENANT
        if not _precleared and not self.store.has_job(spec.job_id):
            self._check_admission(tenant)
        job_id, created = self.store.create_job(spec, tenant=tenant.name)
        self.metrics.inc("service_jobs_submitted_total")
        self.metrics.inc("service_tenant_jobs_submitted_total_"
                         + tenant.metric_suffix)
        if created:
            self.index.record(job_id, self.store.status(job_id), spec=spec)
            self.store.append_event(job_id, "submitted",
                                    spec=spec.describe())
            self._enqueue(job_id, tenant)
        else:
            self.metrics.inc("service_jobs_deduplicated_total")
            state = self.store.status(job_id).get("state")
            if state == "queued":
                # Recovered store or service restart: re-admit without a
                # quota check — the job was admitted once already.
                self._enqueue(job_id, tenant)
        return job_id, created

    def submit_batch(self, specs: List[JobSpec],
                     tenant: Optional[Tenant] = None,
                     ) -> List[Dict[str, object]]:
        """Admit many specs atomically for *tenant*.

        All-or-nothing admission: capacity for every *new* spec in the
        batch (duplicates within the batch and against the store count
        once and zero times respectively) is checked up front, so a
        batch either lands whole or is rejected whole with
        :class:`BackpressureError` — no half-admitted sweeps to clean
        up.  Returns one ``{"id", "state", "created"}`` row per spec,
        in request order.
        """
        tenant = tenant or PUBLIC_TENANT
        new_ids = {spec.job_id for spec in specs
                   if not self.store.has_job(spec.job_id)}
        if new_ids:
            self._check_admission(tenant, count=len(new_ids))
        rows: List[Dict[str, object]] = []
        for spec in specs:
            # Admission was cleared for the whole batch above; skip the
            # per-spec check so a concurrent submitter cannot strand the
            # batch half-admitted.
            job_id, created = self.submit(spec, tenant, _precleared=True)
            rows.append({
                "id": job_id,
                "state": self.store.status(job_id).get("state"),
                "created": created,
            })
        return rows

    def retry_after_hint(self) -> int:
        """Seconds a backpressured client should wait before retrying:
        roughly one queue drain cycle, clamped to [1, 60]."""
        with self._lock:
            depth = len(self._queue)
        return max(1, min(60, depth // max(1, self._max_workers)))

    def _check_admission(self, tenant: Tenant, count: int = 1) -> None:
        with self._lock:
            if (self.queue_limit
                    and len(self._queue) + count > self.queue_limit):
                self.metrics.inc("service_jobs_rejected_total")
                raise BackpressureError(
                    f"admission queue is full "
                    f"({len(self._queue)}/{self.queue_limit} jobs queued)",
                    retry_after=max(1, len(self._queue)
                                    // max(1, self._max_workers)),
                )
            active = self._tenant_active.get(tenant.name, 0)
            if tenant.max_active and active + count > tenant.max_active:
                self.metrics.inc("service_jobs_rejected_total")
                self.metrics.inc("service_tenant_jobs_rejected_total_"
                                 + tenant.metric_suffix)
                raise BackpressureError(
                    f"tenant {tenant.name!r} is at its quota "
                    f"({active}/{tenant.max_active} jobs active)",
                    retry_after=max(1, active
                                    // max(1, self._max_workers)),
                )

    def _enqueue(self, job_id: str, tenant: Tenant) -> None:
        with self._lock:
            if job_id in self._queued or job_id in self._active:
                return
            self._admit_seq += 1
            heapq.heappush(self._queue,
                           (-tenant.priority, self._admit_seq, job_id))
            self._queued.add(job_id)
            self._job_tenant[job_id] = tenant.name
            self._tenant_active[tenant.name] = (
                self._tenant_active.get(tenant.name, 0) + 1)
            self._enqueued_at[job_id] = time.perf_counter()
            self.metrics.set_gauge("service_queue_depth", len(self._queue))
            self.metrics.set_gauge(
                "service_tenant_active_jobs_" + tenant.metric_suffix,
                self._tenant_active[tenant.name])
        self._wakeup.set()

    # -- scheduling ----------------------------------------------------- #

    def _schedule_loop(self) -> None:
        while not self._stopping:
            launched = self._launch_ready()
            if not launched:
                self._wakeup.wait(timeout=0.1)
                self._wakeup.clear()

    def _launch_ready(self) -> bool:
        with self._lock:
            if not self._queue or len(self._active) >= self._max_workers:
                return False
            _, _, job_id = heapq.heappop(self._queue)
            self._queued.discard(job_id)
            enqueued = self._enqueued_at.pop(job_id, None)
            if enqueued is not None:
                self.metrics.observe("service_queue_wait_seconds",
                                     time.perf_counter() - enqueued)
            supervisor = WorkerSupervisor(
                self.store, self.config, metrics=self.metrics,
                worker_command=self._worker_command,
            )
            self._active[job_id] = supervisor
            self.metrics.set_gauge("service_queue_depth", len(self._queue))
            self.metrics.set_gauge("service_running_jobs",
                                   len(self._active))
        thread = threading.Thread(
            target=self._supervise, args=(job_id, supervisor),
            name=f"repro-service-{job_id}", daemon=True,
        )
        thread.start()
        return True

    def _supervise(self, job_id: str, supervisor: WorkerSupervisor) -> None:
        try:
            outcome = supervisor.supervise(job_id)
            if outcome.state == "succeeded":
                report = self.store.load_report(job_id)
                if report is not None:
                    for seconds in report.pass_seconds:
                        self.metrics.observe("service_pass_seconds", seconds)
        finally:
            with self._lock:
                self._active.pop(job_id, None)
                tenant_name = self._job_tenant.pop(job_id, None)
                if tenant_name is not None and job_id not in self._queued:
                    left = max(0, self._tenant_active.get(tenant_name, 1)
                               - 1)
                    self._tenant_active[tenant_name] = left
                    self.metrics.set_gauge(
                        "service_tenant_active_jobs_"
                        + Tenant(name=tenant_name).metric_suffix, left)
                self.metrics.set_gauge("service_running_jobs",
                                       len(self._active))
            self._wakeup.set()

    # -- fabric tasks ---------------------------------------------------- #

    def run_tasks(self, docs: List[object]) -> List[Dict[str, object]]:
        """Decode and execute wire task documents; per-task outcome rows.

        Raises :class:`ValueError` when any document fails its kind's
        strict decode (the handler answers 400 — a malformed task is the
        *request's* fault).  Execution failures, by contrast, land in
        the task's own ``{"ok": false, "error": ...}`` row so one
        poisoned task cannot hide its shard-mates' results.
        """
        if self.task_fabric is None:
            raise RuntimeError("task execution is not enabled")
        tasks = [decode_task(doc) for doc in docs]
        self.metrics.inc("service_tasks_total", len(tasks))
        outcomes = self.task_fabric.map_outcomes(tasks)
        rows: List[Dict[str, object]] = []
        errors = 0
        for task, (ok, value) in zip(tasks, outcomes):
            if ok:
                rows.append({"ok": True,
                             "result": encode_result(task.kind, value)})
            else:
                errors += 1
                rows.append({"ok": False, "error": str(value)})
        if errors:
            self.metrics.inc("service_task_errors_total", errors)
        return rows

    # -- memo ------------------------------------------------------------ #

    @property
    def memo_store(self):
        """The authoritative memo behind ``/memo`` (None when disabled).

        Lazily opened from ``config.memo_root`` — the same store the
        supervisor hands its job workers, so fleet PUTs and local
        workers converge on one directory.
        """
        if self.config.memo_root is None:
            return None
        with self._memo_lock:
            if self._memo_store is None:
                from ..memo import MemoStore

                self._memo_store = MemoStore(self.config.memo_root,
                                             registry=self.metrics)
            return self._memo_store

    # -- views ---------------------------------------------------------- #

    def job_view(self, job_id: str) -> Dict[str, object]:
        """The JSON view of one job (raises StoreError on unknown ids)."""
        spec = self.store.load_spec(job_id)
        status = self.store.status(job_id)
        view: Dict[str, object] = {
            "id": job_id,
            "state": status.get("state"),
            "attempts": status.get("attempts", 0),
            "created": status.get("created"),
            "updated": status.get("updated"),
            "spec": spec.to_doc(),
        }
        if status.get("tenant") is not None:
            view["tenant"] = status["tenant"]
        for key in ("error", "traceback", "reason"):
            if status.get(key) is not None:
                view[key] = status[key]
        passes = self.store.checkpoint_passes(job_id)
        if passes:
            view["checkpointed_passes"] = passes
        report = self.store.load_report_doc(job_id)
        if report is not None:
            view["report"] = {
                k: v for k, v in report.items() if k != "circuit"
            }
        return view

    def list_view(self, state: Optional[str] = None,
                  tenant: Optional[str] = None,
                  limit: Optional[int] = None,
                  offset: int = 0) -> List[Dict[str, object]]:
        """Compact JSON rows for ``GET /jobs`` — answered entirely from
        the SQLite index; no per-job directory is touched."""
        return self.index.rows(state=state, tenant=tenant,
                               limit=limit, offset=offset)

    def summary_view(self) -> Dict[str, object]:
        """``GET /jobs/summary``: per-tenant x per-state counts.

        One grouped SQLite query — the operator's "who is using the
        service and how is it going" dashboard line, at any job count.
        """
        tenants, states, total = self.index.summary()
        return {"total": total, "tenants": tenants, "states": states}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the service (one instance per request)."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # Populated by ThreadedServiceServer via a subclass attribute.
    service: ResynthesisService = None  # type: ignore[assignment]

    def log_message(self, fmt: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------- #

    def _send_body(self, code: int, body: bytes,
                   content_type: str) -> None:
        """Send one response with the *per-endpoint* content type.

        (Historically the handler hardcoded ``application/json`` for
        every response; the Prometheus exposition endpoint needs
        ``text/plain; version=0.0.4``.)
        """
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, doc: object) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self._send_body(code, body, "application/json")

    def _error(self, code: int, message: str) -> None:
        self.service.metrics.inc("service_http_errors_total")
        self._send_json(code, {"error": message})

    def _read_json_body(self) -> object:
        """The request body parsed as JSON (ValueError on anomalies)."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ValueError("bad Content-Length") from None
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not JSON: {exc}") from None

    # -- routes --------------------------------------------------------- #

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self.service.metrics.inc("service_http_requests_total")
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/")
        if path == "/jobs":
            self._submit_job()
        elif path == "/tasks":
            self._run_tasks()
        else:
            self._error(404, f"no such route: POST {parsed.path}")

    def _submit_job(self) -> None:
        try:
            doc = self._read_json_body()
            spec = spec_from_doc(doc)
        except (JobSpecError, ValueError) as exc:
            self._error(400, f"invalid job spec: {exc}")
            return
        job_id, created = self.service.submit(spec)
        state = self.service.store.status(job_id).get("state")
        self._send_json(201 if created else 200, {
            "id": job_id, "state": state, "created": created,
        })

    def _run_tasks(self) -> None:
        """``POST /tasks``: execute a fabric task batch (docs/FABRIC.md)."""
        if self.service.task_fabric is None:
            self._error(404, "task execution not enabled "
                             "(start with serve --task-workers N)")
            return
        try:
            doc = self._read_json_body()
        except ValueError as exc:
            self._error(400, str(exc))
            return
        if not isinstance(doc, dict) or not isinstance(
                doc.get("tasks"), list):
            self._error(400, "request body is not {'tasks': [...]}")
            return
        try:
            rows = self.service.run_tasks(doc["tasks"])
        except ValueError as exc:
            self._error(400, f"invalid task document: {exc}")
            return
        self._send_json(200, {"results": rows})

    def do_PUT(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self.service.metrics.inc("service_http_requests_total")
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "memo":
            self._error(404, f"no such route: PUT {parsed.path}")
            return
        store = self.service.memo_store
        if store is None:
            self._error(404, "memo not enabled (start with serve --memo DIR)")
            return
        try:
            doc = self._read_json_body()
            merged = store.merge_entry_doc(parts[1], doc)
        except (ValueError, KeyError, TypeError) as exc:
            self._error(400, f"invalid memo entry: {exc}")
            return
        self._send_json(200, {"merged": merged})

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self.service.metrics.inc("service_http_requests_total")
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        try:
            if parts == ["metrics"]:
                self._metrics()
            elif parts == ["jobs"]:
                self._send_json(200, {"jobs": self.service.list_view()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.service.job_view(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs":
                self._job_subresource(parts[1], parts[2], query)
            elif len(parts) == 2 and parts[0] == "memo":
                self._memo_entry(parts[1])
            else:
                self._error(404, f"no such route: GET {parsed.path}")
        except StoreError as exc:
            self._error(404, str(exc))

    def _metrics(self) -> None:
        """``GET /metrics``: JSON snapshot or Prometheus exposition.

        The historical JSON document stays the default (no ``Accept``
        header, ``*/*``, ``application/json`` — every existing client).
        Prometheus text exposition is served when the client *prefers*
        a plain-text flavour: ``Accept: text/plain`` or
        ``application/openmetrics-text`` with a q-value strictly above
        any JSON alternative.
        """
        registry = self.service.metrics
        if _accepts_prometheus(self.headers.get("Accept")):
            body = render_prometheus(registry).encode("utf-8")
            self._send_body(200, body, PROMETHEUS_CONTENT_TYPE)
        else:
            self._send_json(200, registry.snapshot())

    def _memo_entry(self, class_id: str) -> None:
        """``GET /memo/<id>``: one raw entry document, 404 when absent.

        Served verbatim — the requesting :class:`~repro.memo.RemoteMemo`
        validates against the key it computed, which is where corruption
        must be caught to be meaningful.
        """
        store = self.service.memo_store
        if store is None:
            self._error(404, "memo not enabled (start with serve --memo DIR)")
            return
        doc = store.load_entry_doc(class_id)
        if doc is None:
            self._error(404, f"no memo entry {class_id!r}")
            return
        self._send_json(200, doc)

    def _job_subresource(self, job_id: str, leaf: str,
                         query: Dict[str, List[str]]) -> None:
        store = self.service.store
        if leaf == "events":
            self._events(job_id, query)
        elif leaf == "report":
            doc = store.load_report_doc(job_id)
            if doc is None:
                if not store.has_job(job_id):
                    raise StoreError(f"unknown job {job_id!r}")
                self._error(404, f"job {job_id} has no report yet "
                                 f"(state: {store.status(job_id)['state']})")
            else:
                self._send_json(200, doc)
        elif leaf == "result":
            doc = store.load_report_doc(job_id)
            if doc is None:
                if not store.has_job(job_id):
                    raise StoreError(f"unknown job {job_id!r}")
                self._error(404, f"job {job_id} has no result yet "
                                 f"(state: {store.status(job_id)['state']})")
            else:
                self._send_json(200, doc["circuit"])
        else:
            raise StoreError(f"unknown job resource {leaf!r}")

    def _events(self, job_id: str, query: Dict[str, List[str]]) -> None:
        try:
            after = int(query.get("after", ["0"])[0])
            wait = min(float(query.get("wait", ["0"])[0]), MAX_EVENT_WAIT)
        except ValueError:
            self._error(400, "'after' must be an int, 'wait' a float")
            return
        store = self.service.store
        deadline = time.time() + wait
        while True:
            events = store.events(job_id, after=after)  # 404s unknown ids
            state = store.status(job_id).get("state")
            # Terminal jobs emit no further events; return immediately so
            # pollers do not burn their full wait on a finished job.
            if events or state in TERMINAL_STATES or time.time() >= deadline:
                break
            time.sleep(0.05)
        next_after = events[-1]["seq"] if events else after
        self._send_json(200, {
            "events": events, "next_after": next_after, "state": state,
        })


class ThreadedServiceServer:
    """The legacy front end: a :class:`ResynthesisService` behind a
    ``ThreadingHTTPServer`` (one OS thread per in-flight request).

    Kept as the determinism reference and for comparison runs; new
    deployments should use the asyncio front end
    (:class:`repro.service.asgi.ServiceServer`, the package default),
    which serves a superset of the routes — SSE streaming, batch
    submit, tenant auth and backpressure — on connection-cheap
    coroutines.  Reports are bit-identical across the two front ends
    (pinned by ``tests/service/test_frontends.py``).
    """

    def __init__(
        self,
        store: ArtifactStore,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SupervisorConfig] = None,
        max_workers: int = 2,
        verbose: bool = False,
        task_workers: int = 0,
    ) -> None:
        self.service = ResynthesisService(
            store, config=config, max_workers=max_workers,
            task_workers=task_workers,
        )
        handler = type("BoundHandler", (_Handler,),
                       {"service": self.service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._httpd.verbose = verbose  # read by _Handler.log_message
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start the scheduler and the HTTP listener (background thread)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            kwargs={"poll_interval": 0.1}, daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the HTTP listener, then the service."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self.service.stop(timeout=timeout)

    def serve_forever(self) -> None:
        """Foreground serving (the CLI's ``serve`` path); Ctrl-C stops."""
        self.service.start()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self._httpd.server_close()
            self.service.stop()

    def __enter__(self) -> "ThreadedServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
