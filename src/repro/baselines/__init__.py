"""Baseline optimizers: RAMBO_C-style redundancy addition and removal [1]."""

from .rar import RarReport, rambo_c

__all__ = ["RarReport", "rambo_c"]
