"""RAMBO_C-style redundancy addition and removal (the paper's baseline [1]).

Cheng & Entrena's RAMBO optimizes multi-level logic by *adding* a redundant
connection (one whose stuck-at fault is untestable, so the function is
unchanged) and then removing a target wire that the addition made
redundant.  When the removal cascades — dead cones, follow-on
redundancies — the circuit shrinks.  Characteristically the added
connections create new reconvergent fanout, so the **path count often
rises even as the gate count falls**; Table 3 of the paper turns exactly
on this contrast with Procedure 2.

This implementation searches *directedly*, like the original (which uses
mandatory assignments), but with simulation words as the implication
engine:

1. pick a target wire ``w = (f -> G, pin)`` and compute the random-pattern
   detection word ``D_t`` of its stuck-at-noncontrolling fault — the
   patterns on which any test of ``w`` must operate;
2. walk the propagation cone of ``G``; a destination gate ``G_d`` can
   block all those tests if some source net ``s`` holds ``G_d``'s
   controlling value on every pattern of ``D_t`` *while never flipping*
   ``G_d``'s fault-free output on any sampled pattern (function
   preservation, sampled);
3. candidates passing the word filter get the real proofs: PODEM shows
   the added wire's fault untestable (addition preserves the function),
   then shows the target wire's fault untestable in the modified circuit;
4. remove the target wire, run redundancy removal to harvest cascades,
   and keep the result iff the equivalent-2-input gate count dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis import AnalysisSession
from ..atpg import PodemEngine, PodemStatus, remove_redundancies
from ..faults import FaultSimulator, StuckFault
from ..netlist import (
    Circuit,
    CONTROLLED_OUTPUT,
    CONTROLLING_VALUE,
    GateType,
    simplify,
    two_input_gate_count,
)
from ..sim.patterns import random_words


@dataclass
class RarReport:
    """Outcome of the RAR optimization."""

    circuit: Circuit
    gates_before: int
    gates_after: int
    additions_accepted: int
    rounds: int
    paths_before: int = 0
    paths_after: int = 0

    @property
    def gate_reduction(self) -> int:
        """Equivalent 2-input gates removed."""
        return self.gates_before - self.gates_after

    @property
    def path_growth(self) -> int:
        """PI-to-PO paths added — RAR's characteristic cost (Table 3)."""
        return self.paths_after - self.paths_before


def _noncontrolling(gt: GateType) -> Optional[int]:
    ctrl = CONTROLLING_VALUE.get(gt)
    if ctrl is None:
        return None
    return 1 - ctrl


def _try_bundle(
    work: Circuit,
    target_gate: str,
    target_pin: int,
    dest_gate: str,
    source: str,
    invert: bool,
    max_backtracks: int,
) -> Optional[Circuit]:
    """Prove and apply one addition+removal bundle; None on any failure."""
    trial = work.copy()
    dgate = trial.gate(dest_gate)
    nc_dest = _noncontrolling(dgate.gtype)
    if nc_dest is None:
        return None
    src_net = source
    if invert:
        inv = trial.fresh_net("rar_inv")
        trial.add_gate(inv, GateType.NOT, (source,))
        src_net = inv
    new_pin = len(dgate.fanins)
    trial.replace_gate(dgate.with_fanins(dgate.fanins + (src_net,)))

    # Cheap random filter first: most function-changing additions and most
    # still-testable targets die here for the cost of one fault-sim pass.
    sim = FaultSimulator(trial)
    rng = random.Random(0xA11CE)
    words = random_words(trial.inputs, 128, rng)
    good = sim.good_values(words, 128)
    added_fault = StuckFault(src_net, nc_dest, reader=dest_gate, pin=new_pin)
    if sim.detection_word(added_fault, good, 128):
        return None
    tgate = trial.gate(target_gate)
    nc_target = _noncontrolling(tgate.gtype)
    target_fault = StuckFault(
        tgate.fanins[target_pin], nc_target,
        reader=target_gate, pin=target_pin,
    )
    if sim.detection_word(target_fault, good, 128):
        return None

    engine = PodemEngine(trial, max_backtracks)
    if engine.run(added_fault).status is not PodemStatus.UNTESTABLE:
        return None
    if engine.run(target_fault).status is not PodemStatus.UNTESTABLE:
        return None

    # Remove the target wire (tie its pin to the non-controlling value).
    const = trial.fresh_net(f"tie{nc_target}_")
    trial.add_gate(
        const, GateType.CONST1 if nc_target else GateType.CONST0, ()
    )
    fanins = list(tgate.fanins)
    fanins[target_pin] = const
    trial.replace_gate(trial.gate(target_gate).with_fanins(tuple(fanins)))
    simplify(trial)
    trial = remove_redundancies(
        trial, random_patterns=512, max_backtracks=max_backtracks,
        max_passes=4,
    ).circuit
    return trial


def rambo_c(
    circuit: Circuit,
    max_rounds: int = 2,
    wire_sample: int = 200,
    dest_cap: int = 12,
    n_patterns: int = 2048,
    seed: int = 0,
    max_backtracks: int = 600,
) -> RarReport:
    """Run the RAR baseline; returns the optimized circuit and a report.

    The input circuit is not mutated.  All sampling is seeded, so a given
    circuit optimizes identically across runs.
    """
    rng = random.Random(seed)
    work = remove_redundancies(
        circuit, random_patterns=1024, max_backtracks=max_backtracks
    ).circuit
    before = two_input_gate_count(work)
    # Rebound onto each accepted trial; tracks the live path count so the
    # report can expose RAR's characteristic path growth.
    session = AnalysisSession(work)
    paths_before = session.total_paths()
    accepted = 0
    rounds = 0

    while rounds < max_rounds:
        rounds += 1
        improved = False
        sim = FaultSimulator(work)
        words = random_words(work.inputs, n_patterns, rng)
        good = sim.good_values(words, n_patterns)
        mask = (1 << n_patterns) - 1
        observable = work.transitive_fanin(work.outputs)
        all_nets = [
            n for n in work.nets()
            if work.gate(n).gtype not in (GateType.CONST0, GateType.CONST1)
            and n in observable
        ]

        # Target wires: pins of AND/OR-family gates, prioritized by the
        # logic a removal would kill: a wire whose driver has no other
        # fanout takes its whole exclusive cone with it, which is where
        # RAR's net gains come from (removing a shared wire only shrinks
        # one gate by a pin, and the enabling addition costs a pin).
        from ..netlist import gate_two_input_equivalents

        def exclusive_cone_gain(driver: str) -> int:
            gain = 0
            net = driver
            while True:
                g = work.gate(net)
                if g.gtype in (GateType.INPUT, GateType.CONST0,
                               GateType.CONST1):
                    return gain
                if len(work.fanouts(net)) > 1:
                    return gain
                gain += gate_two_input_equivalents(g)
                # follow a single-fanin chain heuristically
                candidates = [
                    f for f in g.fanins if len(work.fanouts(f)) == 1
                ]
                if not candidates:
                    return gain
                net = candidates[0]

        wires: List[Tuple[int, str, int]] = []
        for gate in work.logic_gates():
            if gate.name not in observable:
                continue
            if gate.gtype in CONTROLLING_VALUE and len(gate.fanins) >= 2:
                for pin, driver in enumerate(gate.fanins):
                    fanout = len(work.fanouts(driver))
                    potential = 1 + (
                        exclusive_cone_gain(driver) if fanout == 1 else 0
                    )
                    wires.append((potential, gate.name, pin))
        rng.shuffle(wires)
        wires.sort(key=lambda t: -t[0])
        wires = [(g, p) for _, g, p in wires[:wire_sample]]

        for target_gate, target_pin in wires:
            if not work.has_net(target_gate):
                continue
            tgate = work.gate(target_gate)
            if (target_pin >= len(tgate.fanins)
                    or tgate.gtype not in CONTROLLING_VALUE):
                continue
            nc_t = _noncontrolling(tgate.gtype)
            target_fault = StuckFault(
                tgate.fanins[target_pin], nc_t,
                reader=target_gate, pin=target_pin,
            )
            d_t = sim.detection_word(target_fault, good, n_patterns)
            if d_t == 0:
                continue  # already (effectively) redundant or hard

            # Destination gates in the propagation cone of the target.
            cone = [
                n for n in work.transitive_fanout([target_gate])
                if n != target_gate
                and work.gate(n).gtype in CONTROLLING_VALUE
            ]
            rng.shuffle(cone)
            # The target gate itself comes first: adding a wire there and
            # removing the target pin is classic *wire substitution*, the
            # move that retires a driver together with its exclusive cone.
            dests = [target_gate] + cone[:dest_cap]
            candidates: List[Tuple[str, str, bool]] = []
            for dest in dests:
                dgate = work.gate(dest)
                ctrl = CONTROLLING_VALUE[dgate.gtype]
                ctrl_out = CONTROLLED_OUTPUT[dgate.gtype]
                out_word = good[dest]
                # patterns where forcing a controlling input would change
                # the (fault-free) output
                matter = out_word ^ (mask if ctrl_out else 0)
                if d_t & matter:
                    # on some test pattern the good output isn't at its
                    # controlled value: an added controlling input there
                    # would change the function; this destination cannot
                    # block all tests invisibly
                    continue
                tfo_dest = work.transitive_fanout([dest])
                for s in all_nets:
                    if s in tfo_dest or s == dest or s in dgate.fanins:
                        continue
                    s_word = good[s]
                    for invert in (False, True):
                        w = s_word ^ (mask if invert else 0)
                        s_ctrl = w if ctrl else w ^ mask
                        if (d_t & ~s_ctrl) & mask:
                            continue  # not controlling on every test
                        if s_ctrl & matter:
                            continue  # would change the function somewhere
                        candidates.append((dest, s, invert))
                    if len(candidates) >= 3:
                        break
                if len(candidates) >= 3:
                    break
            cost_now = two_input_gate_count(work)
            for dest, s, invert in candidates[:3]:
                trial = _try_bundle(
                    work, target_gate, target_pin, dest, s, invert,
                    max_backtracks,
                )
                if trial is None:
                    continue
                if two_input_gate_count(trial) < cost_now:
                    session.close()
                    work = trial
                    session = AnalysisSession(work)
                    accepted += 1
                    improved = True
                    sim = FaultSimulator(work)
                    good = sim.good_values(words, n_patterns)
                    observable = work.transitive_fanin(work.outputs)
                    all_nets = [
                        n for n in work.nets()
                        if work.gate(n).gtype not in (GateType.CONST0,
                                                      GateType.CONST1)
                        and n in observable
                    ]
                    break
        if not improved:
            break

    work.name = circuit.name
    paths_after = session.total_paths()
    session.close()
    return RarReport(
        circuit=work,
        gates_before=before,
        gates_after=two_input_gate_count(work),
        additions_accepted=accepted,
        rounds=rounds,
        paths_before=paths_before,
        paths_after=paths_after,
    )
