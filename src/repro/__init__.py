"""repro: reproduction of Pomeranz & Reddy, DAC 1995.

"On Synthesis-for-Testability of Combinational Logic Circuits": comparison
functions, comparison units, and resynthesis procedures that reduce gate and
path counts while improving path-delay-fault testability.

Public API highlights
---------------------
- :class:`repro.netlist.Circuit` and :class:`repro.netlist.CircuitBuilder`
- :func:`repro.io.read_bench` / :func:`repro.io.write_bench`
- :func:`repro.analysis.count_paths` (Procedure 1)
- :class:`repro.comparison.ComparisonSpec`, :func:`repro.comparison.identify_comparison`,
  :func:`repro.comparison.build_unit` (Section 3)
- :func:`repro.resynth.procedure2` / :func:`repro.resynth.procedure3` (Section 4)
- :mod:`repro.faults`, :mod:`repro.atpg`, :mod:`repro.pdf` testability substrates
- :mod:`repro.experiments` drivers that regenerate every paper table
"""

__version__ = "1.0.0"

from . import obs  # noqa: F401
from . import netlist  # noqa: F401
from . import io  # noqa: F401
from . import sim  # noqa: F401
from . import analysis  # noqa: F401
from . import comparison  # noqa: F401
from . import faults  # noqa: F401
from . import atpg  # noqa: F401
from . import pdf  # noqa: F401
from . import resynth  # noqa: F401
from . import baselines  # noqa: F401
from . import techmap  # noqa: F401
from . import benchcircuits  # noqa: F401
from . import scan  # noqa: F401
from . import bdd  # noqa: F401

__all__ = [
    "analysis",
    "atpg",
    "baselines",
    "bdd",
    "benchcircuits",
    "comparison",
    "faults",
    "io",
    "netlist",
    "obs",
    "pdf",
    "resynth",
    "scan",
    "sim",
    "techmap",
    "__version__",
]
