"""Resynthesis wall-clock benchmark (the incremental-engine scoreboard).

Runs Procedures 2 and 3 over suite circuits and emits a JSON report with
wall time, report numbers and the mutation throughput of the incremental
analysis engine.  The committed ``BENCH_resynth.json`` at the repo root is
the reference baseline; re-run after touching the netlist/analysis hot
paths and compare with ``--compare``::

    PYTHONPATH=src python scripts/bench_resynth.py --out BENCH_resynth.json
    PYTHONPATH=src python scripts/bench_resynth.py --compare BENCH_resynth.json

``--quick`` runs a seconds-scale subset (used as the CI smoke check, which
only guards that the benchmark itself keeps working; timing assertions
would be noise on shared runners).

``--jobs N`` fans candidate evaluation over N worker processes
(:mod:`repro.parallel`).  Report numbers are bit-identical at any value —
``--compare`` enforces exactly that — so a ``--jobs`` run can be compared
against a serial baseline; the ``jobs`` column records what was used.

``--fabric serial|process|remote`` picks the execution backend
explicitly (docs/FABRIC.md); the ``fabric`` column records it.  The
determinism contract makes every backend comparable against the same
baseline.  ``--fabric remote`` ships work to ``--workers URL`` fleet
members, or — with no ``--workers`` — self-hosts a loopback
``ServiceServer`` running ``--task-workers N`` local worker processes,
which is how the committed acceptance entry was measured::

    PYTHONPATH=src python scripts/bench_resynth.py --circuits syn35932 \\
        --fabric remote --task-workers 2 --compare BENCH_resynth.json

(The committed baseline carries that run under a ``remote_acceptance``
key, manually merged in; ``--compare`` only reads ``results``.)

``--sweep`` additionally benchmarks :mod:`repro.sweep` (docs/SWEEP.md):
one grid — the benchmarked circuits x Procedures 2 and 3 x K in {4, 5} —
run to a Pareto-front report through a serial fabric and through remote
fabrics over self-hosted loopback servers with 1 and 2 task workers.
Rows are checked bit-identical across the legs on the spot (the sweep
determinism contract), so the ``sweep`` key the report gains is honest
wall clock over identical work: single-box fan-out overhead vs. what an
extra worker process buys back.

``--memo DIR`` additionally benchmarks the persistent identification
cache (docs/MEMO.md): after the plain run that produces ``wall_s``
(kept memo-less so the column stays comparable across baselines), each
procedure runs twice against a per-procedure store under DIR — cold
(recording; ``cold_wall_s``, dominated by the store's fsync-per-put
durability discipline) and warm from a fresh store instance
(``warm_wall_s``/``warm_speedup``/``memo_hits``) — with the in-process
identification cache cleared around every leg so the timings measure
the store, and all three reports checked bit-identical on the spot.
"""

import argparse
import json
import os
import platform
import sys
import time

from repro.benchcircuits.suite import suite_circuit
from repro.comparison import identification_cache
from repro.resynth import REPORT_NUMBER_FIELDS, procedure2, procedure3

#: Default circuit set: smallest, a mid-size, and the largest suite member
#: (the acceptance circuit for the incremental engine).
DEFAULT_CIRCUITS = ["syn1423", "syn9234", "syn35932"]
QUICK_CIRCUITS = ["syn1423"]

PROCEDURES = {"procedure2": procedure2, "procedure3": procedure3}


def bench_one(name, k, seed, jobs, memo_root=None, fabric=None):
    circuit = suite_circuit(name)
    entry = {}
    for proc_name, proc in PROCEDURES.items():
        if memo_root:
            identification_cache().clear()
        t0 = time.perf_counter()
        rep = proc(circuit, k=k, seed=seed, jobs=jobs, fabric=fabric)
        wall = time.perf_counter() - t0
        row = {
            "wall_s": round(wall, 3),
            "pass_seconds": [round(s, 3) for s in rep.pass_seconds],
            "jobs": rep.jobs,
            "fabric": rep.timings.get(
                "fabric", "process" if jobs > 1 else "serial"),
            "gates_before": rep.gates_before,
            "gates_after": rep.gates_after,
            "paths_before": rep.paths_before,
            "paths_after": rep.paths_after,
            "replacements": rep.replacements,
            "passes": rep.passes,
            "mutations": rep.mutations,
            "mutations_per_s": round(rep.mutations / wall, 1) if wall else 0.0,
        }
        per_pass = ", ".join(f"{s:.2f}" for s in rep.pass_seconds)
        print(
            f"{name} {proc_name}: {wall:.2f}s  "
            f"gates {rep.gates_before}->{rep.gates_after}  "
            f"paths {rep.paths_before}->{rep.paths_after}  "
            f"{rep.mutations} mutations  passes [{per_pass}]s",
            flush=True,
        )
        if memo_root:
            from repro.memo import MemoStore
            from repro.obs import Registry

            store_dir = os.path.join(memo_root, f"{name}-{proc_name}")
            walls = {}
            for leg in ("cold", "warm"):
                store = MemoStore(store_dir, registry=Registry())
                identification_cache().clear()
                t1 = time.perf_counter()
                leg_rep = proc(circuit, k=k, seed=seed, jobs=jobs,
                               memo=store, fabric=fabric)
                walls[leg] = time.perf_counter() - t1
                identification_cache().clear()
                drift = [f for f in REPORT_NUMBER_FIELDS
                         if getattr(leg_rep, f) != getattr(rep, f)]
                if drift:
                    raise SystemExit(
                        f"{leg}-memo report diverged for {name} "
                        f"{proc_name} on: {', '.join(drift)}")
            row["cold_wall_s"] = round(walls["cold"], 3)
            row["warm_wall_s"] = round(walls["warm"], 3)
            row["warm_speedup"] = round(walls["cold"] / walls["warm"], 2) \
                if walls["warm"] else 0.0
            row["memo_hits"] = store.stats.hits
            print(
                f"{name} {proc_name} memo: cold {walls['cold']:.2f}s "
                f"(recording), warm {walls['warm']:.2f}s "
                f"({row['warm_speedup']:.2f}x vs cold, "
                f"{wall / walls['warm']:.2f}x vs memo-less, "
                f"{store.stats.hits} hits, "
                f"hit rate {store.stats.hit_rate:.2f}) "
                f"[reports identical]",
                flush=True,
            )
        entry[proc_name] = row
    return entry


def bench_sweep(circuits, seed):
    """The sweep leg: one grid through serial and remote backends."""
    import tempfile

    from repro.fabric import RemoteFabric
    from repro.service import ArtifactStore, ServiceServer
    from repro.sweep import (
        SWEEP_ROW_NUMBER_FIELDS,
        SweepRunner,
        sweep_from_doc,
    )

    spec = sweep_from_doc({
        "format": "repro-sweepspec",
        "circuits": list(circuits),
        "procedures": ["procedure2", "procedure3"],
        "ks": [4, 5],
        "seeds": [seed],
    })
    print(f"\nsweep grid: {spec.describe()}", flush=True)
    entry = {"grid": spec.to_doc(), "sweep_id": spec.sweep_id,
             "cells": len(spec.cells()), "legs": {}}
    reference = None
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as work:
        legs = [("serial", None, None)]
        legs += [(f"remote_workers{n}", n, None) for n in (1, 2)]
        for i, (leg_name, task_workers, _) in enumerate(legs):
            fabric = None
            server = None
            if task_workers is not None:
                server = ServiceServer(
                    ArtifactStore(os.path.join(work, f"store{i}")),
                    task_workers=task_workers)
                server.start()
                fabric = RemoteFabric([server.url],
                                      shards=max(task_workers, 1))
            identification_cache().clear()
            t0 = time.perf_counter()
            try:
                result = SweepRunner(
                    spec, os.path.join(work, f"leg{i}"),
                    fabric=fabric).run()
            finally:
                if fabric is not None:
                    fabric.close()
                if server is not None:
                    server.stop()
            wall = time.perf_counter() - t0
            identification_cache().clear()
            if reference is None:
                reference = result
                n_front = sum(len(ids) for ids in result.front.values())
                entry["front_cells"] = n_front
            else:
                ref_rows = {r["cell_id"]: r for r in reference.rows}
                for row in result.rows:
                    drift = [f for f in SWEEP_ROW_NUMBER_FIELDS
                             if ref_rows[row["cell_id"]][f] != row[f]]
                    if drift:
                        raise SystemExit(
                            f"sweep leg {leg_name} diverged on cell "
                            f"{row['cell_id']}: {', '.join(drift)}")
                if result.front != reference.front:
                    raise SystemExit(
                        f"sweep leg {leg_name} changed the Pareto front")
            entry["legs"][leg_name] = {"wall_s": round(wall, 3)}
            print(f"sweep {leg_name}: {wall:.2f}s "
                  f"({len(result.rows)} cells"
                  f"{'' if reference is result else ', rows identical'})",
                  flush=True)
    return entry


def compare(current, baseline_path):
    with open(baseline_path) as fh:
        base = json.load(fh)
    print(f"\nvs {baseline_path} (k={base['k']}, seed={base['seed']}):")
    for name, entry in current["results"].items():
        for proc_name, row in entry.items():
            old = base.get("results", {}).get(name, {}).get(proc_name)
            if old is None:
                continue
            same = all(
                row[f] == old[f]
                for f in ("gates_after", "paths_after", "replacements")
            )
            ratio = old["wall_s"] / row["wall_s"] if row["wall_s"] else 0.0
            print(
                f"  {name} {proc_name}: {old['wall_s']:.2f}s -> "
                f"{row['wall_s']:.2f}s ({ratio:.2f}x) "
                f"[reports {'identical' if same else 'DIFFER'}]"
            )
            if not same:
                raise SystemExit(
                    f"report numbers changed for {name} {proc_name}"
                )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--circuits", nargs="*", default=None,
                    help="suite circuit names (default: small/mid/large)")
    ap.add_argument("--k", type=int, default=5)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--jobs", type=int, default=1,
                    help="worker processes for candidate evaluation "
                         "(default 1 = serial; reports are identical)")
    ap.add_argument("--fabric", default=None,
                    choices=["serial", "process", "remote"],
                    help="execution backend for candidate evaluation "
                         "(docs/FABRIC.md); default follows --jobs")
    ap.add_argument("--workers", action="append", default=None,
                    metavar="URL",
                    help="remote worker base URL (repeatable; implies "
                         "--fabric remote)")
    ap.add_argument("--task-workers", type=int, default=2, metavar="N",
                    help="worker processes for the self-hosted loopback "
                         "server used by --fabric remote without "
                         "--workers (default 2)")
    ap.add_argument("--memo", default=None, metavar="DIR",
                    help="benchmark the persistent identification cache "
                         "under DIR: adds warm_wall_s/warm_speedup/"
                         "memo_hits columns (docs/MEMO.md)")
    ap.add_argument("--sweep", action="store_true",
                    help="also benchmark a repro.sweep grid over serial "
                         "and remote backends (docs/SWEEP.md); adds a "
                         "'sweep' key to the report")
    ap.add_argument("--quick", action="store_true",
                    help="seconds-scale smoke subset (CI)")
    ap.add_argument("--out", default=None,
                    help="write the JSON report here")
    ap.add_argument("--compare", default=None, metavar="BASELINE.json",
                    help="print speedups vs a previous report; exits "
                         "nonzero if report numbers changed")
    args = ap.parse_args()

    circuits = args.circuits or (
        QUICK_CIRCUITS if args.quick else DEFAULT_CIRCUITS
    )
    fabric_name = args.fabric or ("remote" if args.workers else None)
    fabric = None
    server = None
    if fabric_name == "serial":
        from repro.fabric import SerialFabric

        fabric = SerialFabric()
    elif fabric_name == "process":
        from repro.fabric import ProcessFabric

        fabric = ProcessFabric(max(args.jobs, 2))
    elif fabric_name == "remote":
        import tempfile

        from repro.fabric import RemoteFabric
        from repro.service import ArtifactStore, ServiceServer

        workers = args.workers
        if not workers:
            server = ServiceServer(
                ArtifactStore(tempfile.mkdtemp(prefix="repro-bench-")),
                task_workers=args.task_workers)
            server.start()
            workers = [server.url]
            print(f"self-hosted worker: {server.url} "
                  f"({args.task_workers} task worker(s))")
        fabric = RemoteFabric(workers)
    report = {
        "schema": 1,
        "k": args.k,
        "seed": args.seed,
        "jobs": args.jobs,
        "fabric": fabric.name if fabric is not None else (
            "process" if args.jobs > 1 else "serial"),
        "memo": bool(args.memo),
        "python": platform.python_version(),
        "results": {},
    }
    t0 = time.perf_counter()
    try:
        for name in circuits:
            report["results"][name] = bench_one(
                name, args.k, args.seed, args.jobs,
                memo_root=args.memo, fabric=fabric)
    finally:
        if fabric is not None:
            fabric.close()
        if server is not None:
            server.stop()
    if args.sweep:
        sweep_circuits = [c for c in circuits if c != "syn35932"]
        report["sweep"] = bench_sweep(sweep_circuits or circuits,
                                      args.seed)
    report["total_wall_s"] = round(time.perf_counter() - t0, 3)
    print(f"total: {report['total_wall_s']:.1f}s")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.compare:
        compare(report, args.compare)
    return 0


if __name__ == "__main__":
    sys.exit(main())
