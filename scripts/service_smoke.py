"""Job-service smoke check (the CI gate for ``repro.service``).

Starts a real :class:`ServiceServer` on an ephemeral port, submits a
small ``syn1423`` Procedure 2 job over HTTP, waits for the supervised
worker subprocess to finish, and asserts the served report and result
netlist are bit-identical to an uninterrupted in-process run — the
end-to-end version of the determinism contract in docs/SERVICE.md,
exercised through every service layer at once (HTTP API, store, worker
subprocess, supervision, checkpoint serialization)::

    PYTHONPATH=src python scripts/service_smoke.py

Prints PASS and exits 0 on success; any mismatch or service failure is
a nonzero exit.  Budget: well under a minute.
"""

import json
import sys
import tempfile
import time

from repro.benchcircuits.suite import suite_circuit
from repro.io import circuit_to_json
from repro.resynth import REPORT_NUMBER_FIELDS, procedure2
from repro.service import (
    ArtifactStore,
    JobSpec,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
)

CIRCUIT = "syn1423"
K = 5
SEED = 1


def main():
    t0 = time.perf_counter()
    spec = JobSpec(procedure="procedure2", circuit=CIRCUIT, k=K, seed=SEED)

    print(f"reference: in-process procedure2({CIRCUIT}, k={K}, "
          f"seed={SEED})", flush=True)
    direct = procedure2(suite_circuit(CIRCUIT), k=K, seed=SEED)

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as root:
        store = ArtifactStore(root)
        config = SupervisorConfig(heartbeat_interval=0.5, poll_interval=0.05)
        with ServiceServer(store, port=0, config=config) as server:
            client = ServiceClient(server.url, timeout=60.0)
            print(f"service: {server.url}", flush=True)

            answer = client.submit(spec)
            print(f"submitted {answer['id']} "
                  f"(state: {answer['state']})", flush=True)
            view = client.wait(answer["id"], timeout=120.0)
            if view["state"] != "succeeded":
                print(f"FAIL: job ended {view['state']}: "
                      f"{view.get('error')}", file=sys.stderr)
                print(view.get("traceback", ""), file=sys.stderr)
                return 1

            report = client.report(answer["id"])
            diverged = [
                f for f in REPORT_NUMBER_FIELDS
                if report[f] != getattr(direct, f)
            ]
            served = json.dumps(client.result(answer["id"]), sort_keys=True)
            expected = json.dumps(
                json.loads(circuit_to_json(direct.circuit)), sort_keys=True)
            if served != expected:
                diverged.append("netlist")
            if diverged:
                print(f"FAIL: served results diverge from the in-process "
                      f"run on: {', '.join(diverged)}", file=sys.stderr)
                return 1

            counters = client.metrics()["counters"]
            for name in ("service_jobs_submitted_total",
                         "service_jobs_succeeded_total"):
                if counters.get(name, 0) < 1:
                    print(f"FAIL: metric {name} missing", file=sys.stderr)
                    return 1

    per_pass = ", ".join(f"{s:.2f}" for s in direct.pass_seconds)
    print(f"PASS: {CIRCUIT} served == in-process "
          f"(gates {direct.gates_before}->{direct.gates_after}, "
          f"paths {direct.paths_before}->{direct.paths_after}, "
          f"passes [{per_pass}]s) "
          f"in {time.perf_counter() - t0:.1f}s total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
