"""Observability smoke check (the CI gate for ``repro.obs``).

Runs a small traced ``syn1423`` Procedure 2 resynthesis through the
real CLI (``resynth --trace``), then validates the whole observability
surface end to end::

    PYTHONPATH=src python scripts/trace_smoke.py

Checks, in order:

1. the written JSONL parses and validates via ``repro.obs.read_trace``
   (format header, required span keys, creation-ordered parents);
2. the span tree matches the taxonomy in docs/OBSERVABILITY.md — one
   ``run`` root whose ``pass`` children agree with the report's pass
   count, each carrying replacement and truth-table-cache columns;
3. the per-pass span durations reconcile with the report's
   ``timings``: each ``pass`` span wall clock matches its
   ``pass_seconds`` entry, and their sum stays within tolerance of
   ``total_seconds`` (the ISSUE acceptance criterion, scaled down);
4. tracing changed nothing: the report numbers equal an untraced run's;
5. ``repro-resynth trace FILE`` renders the per-stage / per-pass
   summary.

Prints PASS and exits 0 on success; any violation is a nonzero exit.
Budget: a few seconds.
"""

import io
import sys
import tempfile
import time
from contextlib import redirect_stdout

from repro.benchcircuits.suite import suite_circuit
from repro.cli import main as cli_main
from repro.comparison import identification_cache
from repro.obs import read_trace
from repro.resynth import REPORT_NUMBER_FIELDS, procedure2, report_from_json

CIRCUIT = "syn1423"
K = 5
SEED = 0  # the CLI's default seed; the reference run must match

#: Sum of pass-span wall clocks vs the report's total_seconds.  The
#: full-size acceptance criterion is 5% on syn35932; this smoke circuit
#: finishes in well under a second, where fixed setup costs weigh
#: proportionally more, so the bar is looser but still reconciles the
#: two timing sources against each other.
TOTAL_TOLERANCE = 0.25


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as root:
        trace_path = f"{root}/run.trace.jsonl"
        report_path = f"{root}/report.json"

        print(f"traced run: repro-resynth resynth {CIRCUIT} --k {K} "
              f"--trace ...", flush=True)
        code = cli_main([
            "resynth", CIRCUIT, "--k", str(K), "--verify", "0",
            "--trace", trace_path, "--out", report_path,
        ])
        if code != 0:
            fail(f"resynth --trace exited {code}")
        with open(report_path, "r", encoding="utf-8") as fh:
            report = report_from_json(fh.read())

        # 1. JSONL schema.
        header, spans = read_trace(trace_path)
        if header["meta"].get("circuit") != CIRCUIT:
            fail(f"trace meta carries {header['meta']}")
        print(f"trace: {len(spans)} spans, schema ok", flush=True)

        # 2. Span taxonomy.
        roots = [s for s in spans if s["parent"] is None]
        if len(roots) != 1 or roots[0]["name"] != "run":
            fail(f"expected one 'run' root, got "
                 f"{[r['name'] for r in roots]}")
        run = roots[0]
        passes = [s for s in spans if s["name"] == "pass"]
        if len(passes) != report.passes:
            fail(f"{len(passes)} pass spans vs report.passes="
                 f"{report.passes}")
        for span in passes:
            if span["parent"] != run["span"]:
                fail(f"pass span {span['span']} not under the run root")
            for key in ("pass_no", "replacements", "tt_hits", "tt_misses"):
                if key not in span["attrs"]:
                    fail(f"pass span missing attr {key!r}")
        if run["attrs"].get("replacements") != report.replacements:
            fail("run span replacement count disagrees with the report")
        names = {s["name"] for s in spans}
        for expected in ("setup", "candidate", "extract", "identify"):
            if expected not in names:
                fail(f"span taxonomy missing {expected!r}")
        print(f"taxonomy: run -> {len(passes)} passes ok", flush=True)

        # 3. Timing reconciliation.
        for span, recorded in zip(passes, report.pass_seconds):
            if abs(span["wall_s"] - recorded) > max(0.05, 0.25 * recorded):
                fail(f"pass {span['attrs']['pass_no']} span wall "
                     f"{span['wall_s']:.3f}s vs pass_seconds "
                     f"{recorded:.3f}s")
        span_sum = sum(s["wall_s"] for s in passes)
        drift = abs(span_sum - report.total_seconds) / report.total_seconds
        if drift > TOTAL_TOLERANCE:
            fail(f"pass spans sum {span_sum:.3f}s vs total_seconds "
                 f"{report.total_seconds:.3f}s ({drift:.1%} apart)")
        print(f"timings: pass spans sum {span_sum:.3f}s, "
              f"total {report.total_seconds:.3f}s "
              f"({drift:.1%} apart) ok", flush=True)

        # 4. Tracing is observation-only.
        identification_cache().clear()
        untraced = procedure2(suite_circuit(CIRCUIT), k=K, seed=SEED)
        for field in REPORT_NUMBER_FIELDS:
            if getattr(untraced, field) != getattr(report, field):
                fail(f"tracing changed report field {field!r}")
        print("determinism: traced == untraced report ok", flush=True)

        # 5. The summarizer renders.
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = cli_main(["trace", trace_path, "--top", "3"])
        rendered = buf.getvalue()
        if code != 0:
            fail(f"trace subcommand exited {code}")
        for needle in ("per-stage totals:", "per-pass breakdown:",
                       "tt_hits"):
            if needle not in rendered:
                fail(f"trace summary missing {needle!r}")
        print("summary: repro-resynth trace renders ok", flush=True)

    print(f"PASS ({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
