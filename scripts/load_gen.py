"""Concurrent load generator for the async service front end.

Hammers a loopback :class:`ServiceServer` with many concurrent
submitters (content-distinct specs plus a dedup-heavy tail), measures
**admission latency** (time to a 2xx/429 answer for ``POST /jobs``),
and verifies the backpressure and event-delivery contracts under load::

    PYTHONPATH=src python scripts/load_gen.py \
        [--submitters N] [--jobs-per-submitter M] [--queue-limit Q] \
        [--p95-ms BOUND] [--json FILE]

Checks (any failure is a nonzero exit):

* every submit answers ``201``/``200`` or a ``429`` that carries
  ``Retry-After`` — no 5xx, no dropped connections;
* with a bounded queue, at least one ``429`` is actually provoked
  (otherwise the run did not test backpressure at all);
* p95 admission latency stays under ``--p95-ms`` (default 250 ms);
* one completed job's SSE stream replays the *entire* event log:
  contiguous seqs from 1 with zero gaps — zero dropped events;
* ``GET /jobs`` under load answers from the SQLite index (spot-checked
  for consistency with the store's own count).

The same numbers land in ``BENCH_resynth.json`` under ``service_slo``
(via ``--json``); the CI leg runs a small burst (50 submitters) against
loopback.  Jobs use tiny inline c17 specs so the run measures the front
end, not the resynthesis engine.
"""

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import (
    ArtifactStore,
    JobSpec,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
)


def make_spec(doc, seed):
    return JobSpec(netlist=doc, k=4, seed=seed, perm_budget=20,
                   max_passes=1)


class Submitter(threading.Thread):
    """One concurrent client: submits its specs, records each answer."""

    def __init__(self, url, specs):
        super().__init__(daemon=True)
        self.client = ServiceClient(url, timeout=60.0, retries=0)
        self.specs = specs
        self.latencies = []  # seconds per answered submit
        self.accepted = 0
        self.deduped = 0
        self.rejected = 0
        self.bad_429 = 0  # 429s missing Retry-After (contract breach)
        self.errors = []

    def run(self):
        for spec in self.specs:
            start = time.perf_counter()
            try:
                answer = self.client.submit(spec)
                self.latencies.append(time.perf_counter() - start)
                if answer.get("created"):
                    self.accepted += 1
                else:
                    self.deduped += 1
            except ServiceAPIError as exc:
                self.latencies.append(time.perf_counter() - start)
                if exc.code == 429:
                    self.rejected += 1
                    if exc.retry_after is None:
                        self.bad_429 += 1
                else:
                    self.errors.append(f"HTTP {exc.code}: {exc.message}")
            except OSError as exc:
                self.errors.append(f"connection: {exc}")


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--submitters", type=int, default=50)
    parser.add_argument("--jobs-per-submitter", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=32)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--p95-ms", type=float, default=250.0)
    parser.add_argument("--json", default=None,
                        help="write the measured numbers to this file")
    args = parser.parse_args()

    doc = json.loads(circuit_to_json(c17()))
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-load-gen-") as root:
        store = ArtifactStore(root)
        config = SupervisorConfig(max_retries=0, poll_interval=0.02)
        with ServiceServer(store, port=0, config=config,
                           max_workers=args.workers,
                           queue_limit=args.queue_limit) as server:
            print(f"service: {server.url} (queue-limit "
                  f"{args.queue_limit}, {args.workers} workers)",
                  flush=True)
            # Distinct seeds per (submitter, slot) except the last slot,
            # which every submitter shares — a dedup storm on one id.
            threads = []
            for s in range(args.submitters):
                specs = [make_spec(doc, seed=s * 1000 + j)
                         for j in range(args.jobs_per_submitter - 1)]
                specs.append(make_spec(doc, seed=999_999))
                threads.append(Submitter(server.url, specs))
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300.0)

            latencies = [x for t in threads for x in t.latencies]
            accepted = sum(t.accepted for t in threads)
            deduped = sum(t.deduped for t in threads)
            rejected = sum(t.rejected for t in threads)
            bad_429 = sum(t.bad_429 for t in threads)
            errors = [e for t in threads for e in t.errors]

            # Listing under load must come from the index and agree
            # with the store.
            listed = len(ServiceClient(server.url, timeout=60.0).jobs())
            stored = len(store.job_ids())

            # Zero dropped events: wait out one known-accepted job and
            # demand its SSE stream is the gap-free log.
            probe = ServiceClient(server.url, timeout=60.0,
                                  backpressure_retries=10)
            answer = probe.submit(make_spec(doc, seed=999_999))
            probe.wait(answer["id"], timeout=120.0)
            stream = [e for e in probe.stream_events(answer["id"])
                      if e.get("type") != "end"]
            seqs = [e["seq"] for e in stream]
            gap_free = seqs == list(range(1, len(seqs) + 1))

        p50 = percentile(latencies, 0.50) * 1000 if latencies else 0.0
        p95 = percentile(latencies, 0.95) * 1000 if latencies else 0.0
        p99 = percentile(latencies, 0.99) * 1000 if latencies else 0.0
        wall = time.perf_counter() - t0
        total = accepted + deduped + rejected
        print(f"submits: {total} answered ({accepted} created, "
              f"{deduped} deduped, {rejected} backpressured) "
              f"across {args.submitters} submitters in {wall:.1f}s")
        print(f"admission latency: p50 {p50:.1f} ms, p95 {p95:.1f} ms, "
              f"p99 {p99:.1f} ms "
              f"(mean {statistics.mean(latencies) * 1000:.1f} ms)")
        print(f"listing: index served {listed} rows, store holds {stored}")
        print(f"event stream: {len(seqs)} events, "
              f"gap-free={gap_free}")

        failures = []
        if errors:
            failures.append(f"{len(errors)} non-backpressure errors "
                            f"(first: {errors[0]})")
        if bad_429:
            failures.append(f"{bad_429} 429s without Retry-After")
        if args.queue_limit and not rejected:
            failures.append("bounded queue provoked zero 429s "
                            "(load too small to test backpressure)")
        if p95 > args.p95_ms:
            failures.append(f"p95 admission latency {p95:.1f} ms exceeds "
                            f"the {args.p95_ms:.0f} ms SLO")
        if not gap_free:
            failures.append(f"event stream has gaps: {seqs}")
        if listed != stored:
            failures.append(f"index listed {listed} jobs, store has "
                            f"{stored}")

        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump({
                    "submitters": args.submitters,
                    "jobs_per_submitter": args.jobs_per_submitter,
                    "queue_limit": args.queue_limit,
                    "submits_answered": total,
                    "created": accepted,
                    "deduplicated": deduped,
                    "backpressured_429": rejected,
                    "admission_latency_ms": {
                        "p50": round(p50, 2), "p95": round(p95, 2),
                        "p99": round(p99, 2),
                    },
                    "p95_slo_ms": args.p95_ms,
                    "events_streamed": len(seqs),
                    "event_stream_gap_free": gap_free,
                    "wall_seconds": round(wall, 2),
                }, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")

        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"PASS: {args.submitters} concurrent submitters, "
              f"p95 {p95:.1f} ms <= {args.p95_ms:.0f} ms, "
              f"{rejected} clean 429s, zero dropped events")
        return 0


if __name__ == "__main__":
    sys.exit(main())
