"""One-time builder for all derived experiment artifacts (idempotent).

Run after installation to materialize the suite circuits and every derived
circuit version (Procedure 2/3 outputs, redundancy-removed forms, RAMBO_C
baseline) under ``repro/benchcircuits/data/``.  Everything is deterministic,
so this is a pure cache warm-up; the experiment drivers rebuild anything
missing on demand.
"""

import time

from repro.benchcircuits.suite import TABLE3_CIRCUITS, suite_names
from repro.experiments.artifacts import (
    proc2_circuit,
    proc2_redrem,
    proc3_circuit,
    rambo_circuit,
    rambo_proc2_circuit,
)


def main() -> None:
    for name in suite_names():
        for k in (5, 6):
            t0 = time.time()
            proc2_circuit(name, k)
            print(f"{name} p2 K={k}: {time.time() - t0:.0f}s", flush=True)
            t0 = time.time()
            proc3_circuit(name, k)
            print(f"{name} p3 K={k}: {time.time() - t0:.0f}s", flush=True)
        t0 = time.time()
        proc2_redrem(name)
        print(f"{name} p2+rr: {time.time() - t0:.0f}s", flush=True)
    for name in TABLE3_CIRCUITS:
        t0 = time.time()
        rambo_circuit(name)
        print(f"{name} rambo: {time.time() - t0:.0f}s", flush=True)
        t0 = time.time()
        rambo_proc2_circuit(name)
        print(f"{name} rambo+p2: {time.time() - t0:.0f}s", flush=True)
    print("ARTIFACTS DONE")


if __name__ == "__main__":
    main()
