"""Sweep smoke check (the CI gate for ``repro.sweep``).

Runs one real grid — a suite circuit and an inline generated circuit x
Procedures 2 and 3 x two K values — through three backends and an
interrupt-then-resume, then checks the whole docs/SWEEP.md contract:

* serial, ``ProcessFabric(2)`` and a ``RemoteFabric`` over a live
  in-process service server produce bit-identical reports on the
  deterministic row fields and the same Pareto front;
* deleting two cell files and the aggregate, then re-running with
  ``--resume`` semantics, re-executes exactly the deleted cells and
  reproduces the reference report;
* each cell's numbers equal a standalone run of the same job spec
  (cell == job identity);
* the front equals an independent brute-force dominance scan.

Usage::

    PYTHONPATH=src python scripts/sweep_smoke.py

Prints PASS and exits 0 on success; any divergence is a nonzero exit.
Budget: a couple of minutes.
"""

import json
import os
import sys
import tempfile
import time

from repro.benchcircuits.generator import random_circuit
from repro.comparison import identification_cache
from repro.fabric import ProcessFabric
from repro.fabric.remote import RemoteFabric
from repro.io import circuit_to_json
from repro.service import ArtifactStore, ServiceServer
from repro.service.jobspec import resolve_circuit
from repro.service.runner import procedure_call
from repro.resynth.serialize import report_to_doc
from repro.sweep import (
    SWEEP_ROW_NUMBER_FIELDS,
    SweepRunner,
    cell_row,
    dominates,
    sweep_from_doc,
)


def grid_doc():
    inline = json.loads(circuit_to_json(
        random_circuit("gen8", 8, 3, 30, seed=5)))
    return {
        "format": "repro-sweepspec",
        "circuits": ["syn1423", inline],
        "procedures": ["procedure2", "procedure3"],
        "ks": [4, 5],
        "seeds": [1],
        "perm_budget": 60,
        "max_passes": 3,
    }


def run_leg(spec, root, fabric=None, resume=False, on_cell=None):
    identification_cache().clear()
    try:
        return SweepRunner(spec, root, fabric=fabric).run(
            resume=resume, on_cell=on_cell)
    finally:
        if fabric is not None:
            fabric.close()


def diverged_rows(reference, leg):
    ref = {row["cell_id"]: row for row in reference.rows}
    bad = []
    for row in leg.rows:
        base = ref[row["cell_id"]]
        fields = [f for f in SWEEP_ROW_NUMBER_FIELDS
                  if base[f] != row[f]]
        if fields:
            bad.append((row["cell_id"], fields))
    return bad


def brute_force_front(rows):
    front = set()
    for row in rows:
        a = (row["gates_after"], row["paths_after"], row["depth"])
        others = [(r["gates_after"], r["paths_after"], r["depth"])
                  for r in rows if r is not row]
        if not any(dominates(b, a) for b in others):
            front.add(row["cell_id"])
    return front


def main():
    t0 = time.perf_counter()
    spec = sweep_from_doc(grid_doc())
    cells = spec.cells()
    print(f"grid: {spec.describe()}", flush=True)

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-sweep-smoke-") as work:
        legs = []
        leg_t = time.perf_counter()
        reference = run_leg(spec, os.path.join(work, "serial"))
        print(f"serial: {len(reference.rows)} cells, "
              f"{time.perf_counter() - leg_t:.1f}s", flush=True)

        leg_t = time.perf_counter()
        legs.append(("process jobs=2", run_leg(
            spec, os.path.join(work, "process"), fabric=ProcessFabric(2))))
        print(f"process: {time.perf_counter() - leg_t:.1f}s", flush=True)

        leg_t = time.perf_counter()
        store = ArtifactStore(os.path.join(work, "server-store"))
        with ServiceServer(store, port=0, task_workers=2) as server:
            legs.append(("remote shards=2", run_leg(
                spec, os.path.join(work, "remote"),
                fabric=RemoteFabric([server.url], shards=2))))
        print(f"remote: {time.perf_counter() - leg_t:.1f}s", flush=True)

        # Interrupt-then-resume: drop two cells and the aggregate.
        leg_t = time.perf_counter()
        resume_root = os.path.join(work, "resume")
        run_leg(spec, resume_root)
        victims = sorted({cells[0].cell_id, cells[-1].cell_id})
        for cell_id in victims:
            os.unlink(os.path.join(resume_root, "cells",
                                   f"{cell_id}.json"))
        os.unlink(os.path.join(resume_root, "report.json"))
        executed = []
        legs.append(("resumed", run_leg(
            spec, resume_root, resume=True,
            on_cell=lambda cell, doc: executed.append(cell.cell_id))))
        print(f"resume: re-ran {len(executed)}/{len(cells)} cells, "
              f"{time.perf_counter() - leg_t:.1f}s", flush=True)
        if sorted(executed) != victims:
            failures.append(
                f"resume re-ran {sorted(executed)}, expected {victims}")

        for name, leg in legs:
            for cell_id, fields in diverged_rows(reference, leg):
                failures.append(f"{name}: cell {cell_id} diverged on "
                                f"{', '.join(fields)}")
            if leg.front != reference.front:
                failures.append(f"{name}: front {leg.front} != "
                                f"serial front {reference.front}")

        # Front referee: independent dominance scan per circuit.
        for name, front_ids in reference.front.items():
            group = [r for r in reference.rows if r["circuit"] == name]
            expected = brute_force_front(group)
            if set(front_ids) != expected:
                failures.append(
                    f"front of {name!r}: {sorted(front_ids)} != "
                    f"brute force {sorted(expected)}")

        # Cell == job: every cell vs its standalone procedure run.
        leg_t = time.perf_counter()
        ref_rows = {row["cell_id"]: row for row in reference.rows}
        for cell in cells:
            identification_cache().clear()
            report = procedure_call(cell.spec)(resolve_circuit(cell.spec))
            row = cell_row(cell, report_to_doc(report))
            base = ref_rows[cell.cell_id]
            fields = [f for f in SWEEP_ROW_NUMBER_FIELDS
                      if base[f] != row[f]]
            if fields:
                failures.append(
                    f"standalone: cell {cell.cell_id} diverged on "
                    f"{', '.join(fields)}")
        identification_cache().clear()
        print(f"standalone: {len(cells)} cells re-run, "
              f"{time.perf_counter() - leg_t:.1f}s", flush=True)

    total = time.perf_counter() - t0
    if failures:
        print(f"FAIL ({len(failures)} problem(s), {total:.1f}s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    n_front = sum(len(ids) for ids in reference.front.values())
    print(f"PASS: {len(cells)} cells x 4 legs bit-identical, front "
          f"{n_front} cell(s) verified, {total:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
