"""Verify every materialized derived circuit against its original.

For each cached artifact: interface identical, function equivalent on
4096 random patterns (and formally, for the smaller circuits).  Run after
`build_artifacts.py`; exits non-zero on any mismatch.
"""

import os
import random
import sys

from repro.benchcircuits.suite import suite_circuit
from repro.experiments.artifacts import DERIVED_DIR
from repro.io.json_io import load_json
from repro.sim import outputs_equal, random_words


def main() -> int:
    failures = 0
    if not os.path.isdir(DERIVED_DIR):
        print("no derived artifacts found; run scripts/build_artifacts.py")
        return 1
    for fn in sorted(os.listdir(DERIVED_DIR)):
        if not fn.endswith(".json"):
            continue
        name = fn.split(".", 1)[0]
        original = suite_circuit(name)
        derived = load_json(os.path.join(DERIVED_DIR, fn))
        ok = True
        if derived.inputs != original.inputs:
            ok = False
            print(f"{fn}: INPUT interface mismatch")
        if derived.outputs != original.outputs:
            ok = False
            print(f"{fn}: OUTPUT interface mismatch")
        if ok:
            rng = random.Random(99)
            words = random_words(original.inputs, 4096, rng)
            if not outputs_equal(original, derived, words, 4096):
                ok = False
                print(f"{fn}: FUNCTIONAL mismatch")
        print(f"{fn}: {'ok' if ok else 'FAILED'}")
        failures += 0 if ok else 1
    print(f"{failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
