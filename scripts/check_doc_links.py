"""Dead-link checker for the repository's Markdown documentation.

Scans ``docs/*.md`` plus the root ``README.md`` and ``DESIGN.md`` (and
any extra files given on the command line) for relative Markdown links
and inline-code path references, and fails (exit 1) when a target does
not exist on disk.  External links (``http://``, ``https://``,
``mailto:``) and pure anchors (``#section``) are ignored; an anchor on a
relative link is stripped before the existence check.

Run it from the repository root::

    python scripts/check_doc_links.py

CI runs exactly that, so a renamed doc or a stale cross-reference fails
the build instead of rotting quietly.
"""

import argparse
import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Inline-code references that look like repo paths we also want to pin:
#: `docs/FOO.md`, `scripts/foo.py`, `tests/...`, `src/repro/...`.
CODE_PATH_RE = re.compile(
    r"`((?:docs|scripts|tests|src|benchmarks|examples)/[A-Za-z0-9_./-]+)`"
)

DEFAULT_FILES = ["README.md", "DESIGN.md"]
DEFAULT_GLOBS = ["docs/*.md"]


def check_file(path: Path, root: Path) -> list:
    """Return ``(line_no, target)`` pairs whose targets do not exist."""
    dead = []
    text = path.read_text(encoding="utf-8")
    for line_no, line in enumerate(text.splitlines(), 1):
        targets = LINK_RE.findall(line) + CODE_PATH_RE.findall(line)
        for target in targets:
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            # Relative to the referencing file first, then the repo root
            # (prose habitually writes root-relative paths like
            # `scripts/bench_resynth.py` from inside docs/).
            if (path.parent / rel).exists() or (root / rel).exists():
                continue
            # Globs in prose (`tests/verify/corpus/*.json`) count as live
            # when they match anything.
            if any(root.glob(rel)) or any(path.parent.glob(rel)):
                continue
            dead.append((line_no, target))
    return dead


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="extra Markdown files to check (default: "
                         "README.md, DESIGN.md, docs/*.md)")
    args = ap.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    files = [root / f for f in DEFAULT_FILES]
    for pattern in DEFAULT_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    files.extend(Path(f) for f in args.files)

    failures = 0
    checked = 0
    for path in files:
        if not path.exists():
            print(f"{path}: missing file")
            failures += 1
            continue
        checked += 1
        try:
            shown = path.relative_to(root)
        except ValueError:
            shown = path
        for line_no, target in check_file(path, root):
            print(f"{shown}:{line_no}: dead link -> {target}")
            failures += 1
    status = "FAILED" if failures else "ok"
    print(f"doc-link check {status}: {checked} file(s), "
          f"{failures} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
