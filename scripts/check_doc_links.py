"""Dead-link checker for the repository's Markdown documentation.

Scans ``docs/*.md`` plus the root ``README.md`` and ``DESIGN.md`` (and
any extra files given on the command line) for relative Markdown links
and inline-code path references, and fails (exit 1) when a target does
not exist on disk.  External links (``http://``, ``https://``,
``mailto:``) are ignored.

Anchors are validated too: for ``other.md#section`` (and pure
intra-document ``#section``) links the fragment must match a heading in
the target document, using GitHub's slug rules — lowercase, punctuation
dropped, spaces to hyphens, ``-1``/``-2`` suffixes for repeated
headings.  Headings inside fenced code blocks do not count.

Run it from the repository root::

    python scripts/check_doc_links.py

CI runs exactly that, so a renamed doc, a stale cross-reference, or a
reworded heading with live deep links fails the build instead of
rotting quietly.
"""

import argparse
import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Inline-code references that look like repo paths we also want to pin:
#: `docs/FOO.md`, `scripts/foo.py`, `tests/...`, `src/repro/...`.
CODE_PATH_RE = re.compile(
    r"`((?:docs|scripts|tests|src|benchmarks|examples)/[A-Za-z0-9_./-]+)`"
)

#: ATX headings (``# ...`` through ``###### ...``).
HEADING_RE = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$")

#: Fenced code block delimiters (``` or ~~~, optionally indented).
FENCE_RE = re.compile(r"^\s*(```|~~~)")

DEFAULT_FILES = ["README.md", "DESIGN.md"]
DEFAULT_GLOBS = ["docs/*.md"]


def github_slug(heading: str) -> str:
    """The GitHub anchor slug for one heading's text."""
    # Inline markup contributes its text, not its syntax.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links
    text = text.replace("`", "").replace("**", "").replace("*", "")
    text = text.lower()
    # Keep word characters (incl. underscore), spaces and hyphens;
    # drop everything else.  Spaces become hyphens.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path, cache: dict) -> set:
    """All valid anchor slugs in *path* (GitHub dedup rules applied)."""
    if path in cache:
        return cache[path]
    anchors = set()
    counts = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if not seen else f"{slug}-{seen}")
    cache[path] = anchors
    return anchors


def check_file(path: Path, root: Path, anchor_cache: dict) -> list:
    """Return ``(line_no, target, reason)`` triples for dead targets."""
    dead = []
    text = path.read_text(encoding="utf-8")
    in_fence = False
    for line_no, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets = LINK_RE.findall(line) + CODE_PATH_RE.findall(line)
        for target in targets:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            rel, _, fragment = target.partition("#")
            if not rel and not fragment:
                continue
            # Resolve the file part: relative to the referencing file
            # first, then the repo root (prose habitually writes
            # root-relative paths like `scripts/bench_resynth.py`
            # from inside docs/).  Empty rel = this document.
            resolved = path
            if rel:
                if (path.parent / rel).exists():
                    resolved = path.parent / rel
                elif (root / rel).exists():
                    resolved = root / rel
                # Globs in prose (`tests/verify/corpus/*.json`) count
                # as live when they match anything.
                elif any(root.glob(rel)) or any(path.parent.glob(rel)):
                    continue
                else:
                    dead.append((line_no, target, "dead link"))
                    continue
            if not fragment:
                continue
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # anchors into non-Markdown are not ours to judge
            if fragment.lower() not in heading_anchors(resolved,
                                                       anchor_cache):
                dead.append((line_no, target, "dead anchor"))
    return dead


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="extra Markdown files to check (default: "
                         "README.md, DESIGN.md, docs/*.md)")
    args = ap.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    files = [root / f for f in DEFAULT_FILES]
    for pattern in DEFAULT_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    files.extend(Path(f) for f in args.files)

    failures = 0
    checked = 0
    anchor_cache = {}
    for path in files:
        if not path.exists():
            print(f"{path}: missing file")
            failures += 1
            continue
        checked += 1
        try:
            shown = path.relative_to(root)
        except ValueError:
            shown = path
        for line_no, target, reason in check_file(path, root,
                                                  anchor_cache):
            print(f"{shown}:{line_no}: {reason} -> {target}")
            failures += 1
    status = "FAILED" if failures else "ok"
    print(f"doc-link check {status}: {checked} file(s), "
          f"{failures} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
