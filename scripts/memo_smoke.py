"""Persistent-memo smoke check (the CI gate for ``repro.memo``).

Runs a small suite circuit through Procedure 2 three times — memo-less
baseline, cold store (recording), warm store (a fresh instance reading
the persisted entries back) — plus a warm ``jobs=2`` leg, and asserts
the docs/MEMO.md determinism contract end to end: every report is
bit-identical on the deterministic fields and the result netlists, the
cold run recorded entries, and the warm runs served a nonzero hit rate
with zero misses::

    PYTHONPATH=src python scripts/memo_smoke.py

Prints PASS and exits 0 on success; any report drift, a dead cache, or
an unexpected miss is a nonzero exit.  Budget: well under a minute.
"""

import sys
import tempfile
import time

from repro.benchcircuits.suite import suite_circuit
from repro.comparison import identification_cache
from repro.io import circuit_to_json
from repro.memo import MemoStore
from repro.obs import Registry
from repro.resynth import REPORT_NUMBER_FIELDS, procedure2

CIRCUIT = "syn1423"
K = 5
SEED = 1


def run(memo=None, jobs=1):
    """One sweep with a cold in-process cache (memo answers or nothing)."""
    identification_cache().clear()
    try:
        return procedure2(suite_circuit(CIRCUIT), k=K, seed=SEED,
                          memo=memo, jobs=jobs)
    finally:
        identification_cache().clear()


def diverged_fields(baseline, report):
    bad = [f for f in REPORT_NUMBER_FIELDS
           if getattr(baseline, f) != getattr(report, f)]
    if circuit_to_json(report.circuit) != circuit_to_json(baseline.circuit):
        bad.append("netlist")
    return bad


def main():
    t0 = time.perf_counter()
    print(f"baseline: procedure2({CIRCUIT}, k={K}, seed={SEED}), no memo",
          flush=True)
    baseline = run()

    with tempfile.TemporaryDirectory(prefix="repro-memo-smoke-") as root:
        cold_store = MemoStore(root, registry=Registry())
        cold_t = time.perf_counter()
        cold = run(memo=cold_store)
        cold_s = time.perf_counter() - cold_t
        print(f"cold: {cold_store.stats.puts} put(s), "
              f"{cold_store.disk_entries} entries, {cold_s:.1f}s",
              flush=True)

        legs = [("cold", cold, None)]
        for name, jobs in (("warm", 1), ("warm jobs=2", 2)):
            store = MemoStore(root, registry=Registry())
            leg_t = time.perf_counter()
            report = run(memo=store, jobs=jobs)
            leg_s = time.perf_counter() - leg_t
            print(f"{name}: {store.stats.hits} hit(s), "
                  f"{store.stats.misses} miss(es), "
                  f"hit rate {store.stats.hit_rate:.2f}, {leg_s:.1f}s",
                  flush=True)
            legs.append((name, report, store))

        failures = []
        for name, report, store in legs:
            bad = diverged_fields(baseline, report)
            if bad:
                failures.append(
                    f"{name} run diverges from baseline on: "
                    f"{', '.join(bad)}")
            if store is None:
                continue
            if store.stats.hits == 0:
                failures.append(f"{name} run served no hits (dead cache)")
            # Only the serial warm leg must be all-hit: the jobs=2
            # primer enumerates every pass-start cone, including ones
            # the serial sweep never reached (so the cold run never
            # recorded them) — those miss and get recorded now.
            if name == "warm" and store.stats.misses != 0:
                failures.append(
                    f"{name} run missed {store.stats.misses} lookups "
                    f"the cold run should have recorded")
        if cold_store.stats.puts == 0:
            failures.append("cold run recorded nothing")
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1

    print(f"PASS: {CIRCUIT} memo-less == cold == warm == warm-jobs2 "
          f"(gates {baseline.gates_before}->{baseline.gates_after}, "
          f"paths {baseline.paths_before}->{baseline.paths_after}) "
          f"in {time.perf_counter() - t0:.1f}s total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
