"""Fabric smoke check (the CI gate for ``repro.fabric``).

Runs a small suite circuit through Procedure 2 once per execution
backend — serial (the reference), process (a local pool), and remote
(a :class:`~repro.fabric.RemoteFabric` shipping JSON task documents to
a self-hosted loopback ``ServiceServer``, at two different shard
counts) — and asserts the docs/FABRIC.md determinism contract end to
end: every report is bit-identical on the deterministic fields and the
result netlists, and every fabric actually primed the caches (nonzero
shipped identification work on the first pass)::

    PYTHONPATH=src python scripts/fabric_smoke.py

Prints PASS and exits 0 on success; any report drift or an idle fabric
is a nonzero exit.  Budget: well under a minute.
"""

import sys
import tempfile
import time

from repro.benchcircuits.suite import suite_circuit
from repro.comparison import identification_cache
from repro.fabric import ProcessFabric, RemoteFabric, SerialFabric
from repro.io import circuit_to_json
from repro.obs import Registry
from repro.resynth import REPORT_NUMBER_FIELDS, procedure2
from repro.service import ArtifactStore, ServiceServer

CIRCUIT = "syn1423"
K = 5
SEED = 1


def run(fabric=None, registry=None):
    """One sweep with a cold in-process cache."""
    identification_cache().clear()
    try:
        return procedure2(suite_circuit(CIRCUIT), k=K, seed=SEED,
                          fabric=fabric, registry=registry)
    finally:
        identification_cache().clear()


def diverged_fields(baseline, report):
    bad = [f for f in REPORT_NUMBER_FIELDS
           if getattr(baseline, f) != getattr(report, f)]
    if circuit_to_json(report.circuit) != circuit_to_json(baseline.circuit):
        bad.append("netlist")
    return bad


def main():
    t0 = time.perf_counter()
    print(f"baseline: procedure2({CIRCUIT}, k={K}, seed={SEED}), "
          f"no fabric (inline serial sweep)", flush=True)
    baseline = run()

    with tempfile.TemporaryDirectory(prefix="repro-fabric-smoke-") as root:
        server = ServiceServer(ArtifactStore(root), task_workers=2)
        server.start()
        try:
            legs = [
                ("serial", lambda reg: SerialFabric(registry=reg)),
                ("process", lambda reg: ProcessFabric(2, registry=reg)),
                ("remote shards=1",
                 lambda reg: RemoteFabric([server.url], shards=1,
                                          registry=reg)),
                ("remote shards=2",
                 lambda reg: RemoteFabric([server.url], shards=2,
                                          registry=reg)),
            ]
            failures = []
            for name, make in legs:
                registry = Registry()
                fabric = make(registry)
                leg_t = time.perf_counter()
                try:
                    report = run(fabric=fabric, registry=registry)
                finally:
                    fabric.close()
                leg_s = time.perf_counter() - leg_t
                tasks = registry.counter_value("fabric_tasks_total")
                print(f"{name}: {tasks} task(s), {leg_s:.1f}s", flush=True)
                bad = diverged_fields(baseline, report)
                if bad:
                    failures.append(f"{name} run diverges from baseline "
                                    f"on: {', '.join(bad)}")
                if report.timings.get("fabric") != fabric.name:
                    failures.append(f"{name} run did not record its "
                                    f"backend in the report timings")
                if tasks == 0:
                    failures.append(f"{name} fabric ran no tasks "
                                    f"(planner never primed)")
        finally:
            server.stop()
        if failures:
            for message in failures:
                print(f"FAIL: {message}", file=sys.stderr)
            return 1

    print(f"PASS: {CIRCUIT} serial == process == remote(1,2 shards) "
          f"(gates {baseline.gates_before}->{baseline.gates_after}, "
          f"paths {baseline.paths_before}->{baseline.paths_after}) "
          f"in {time.perf_counter() - t0:.1f}s total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
